// Package lanewire is the framed binary protocol that shard-lane
// worker processes use to stream measurement records back to the
// parent run (DESIGN.md §8.7). A stream opens with a fixed magic and
// version, then carries self-delimiting frames:
//
//	[type u8][lane u32 LE][len u32 LE][payload][crc32 u32 LE]
//
// The CRC (IEEE, over type+lane+len+payload) catches truncation and
// corruption on the pipe; the version header catches a parent and a
// worker built from different protocol revisions. Record batches are a
// compact binary encoding (varints, exact float bits) because they are
// the hot path; the low-rate control frames (job spec, lane-done,
// worker-done, error) carry JSON payloads, which round-trip Go's
// float64 and time.Duration values exactly.
//
// The protocol is transport-agnostic: today it runs over a worker's
// stdin/stdout pipe, but nothing in the framing assumes a pipe, which
// is what leaves the door open to socket-attached lanes on other
// machines.
package lanewire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// magic opens every lanewire stream; the trailing byte is the protocol
// version rendered into the magic so a version-0 reader fails on the
// first four bytes, not mid-frame.
var magic = [4]byte{'R', 'L', 'W', '1'}

// Version is the protocol revision; bump on any frame or record layout
// change. The reader rejects mismatches outright — byte-identity
// guarantees cannot survive a silent cross-version decode.
const Version uint16 = 1

// FrameType tags a frame's payload.
type FrameType uint8

const (
	// FrameJob is the parent→worker job spec (JSON laneJob).
	FrameJob FrameType = 1
	// FrameBatch is a sorted run of records from one worker's
	// pre-merged canonical stream (binary batch encoding).
	FrameBatch FrameType = 2
	// FrameLaneDone reports one finished lane: record tally, wall
	// clock, fault report (JSON).
	FrameLaneDone FrameType = 3
	// FrameWorkerDone ends a worker's stream: obs snapshot (JSON).
	FrameWorkerDone FrameType = 4
	// FrameError aborts the stream with the worker's error text.
	FrameError FrameType = 5
)

// maxPayload bounds a frame so a corrupted length cannot balloon the
// reader's allocation: batches are ~tens of KiB, job specs smaller.
const maxPayload = 64 << 20

// Protocol error sentinels, matchable with errors.Is.
var (
	ErrBadMagic        = errors.New("lanewire: bad stream magic")
	ErrVersionMismatch = errors.New("lanewire: protocol version mismatch")
	ErrChecksum        = errors.New("lanewire: frame checksum mismatch")
	ErrFrameTooLarge   = errors.New("lanewire: frame exceeds size limit")
)

// frameHeaderLen is type(1) + lane(4) + len(4).
const frameHeaderLen = 9

// Writer frames payloads onto w. It writes the stream header lazily on
// the first frame. Not safe for concurrent use; callers serialize.
type Writer struct {
	w      io.Writer
	buf    []byte
	opened bool
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame emits one frame. lane tags record batches with their
// source stream; control frames pass 0.
func (w *Writer) WriteFrame(t FrameType, lane int, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	if !w.opened {
		w.opened = true
		var hdr [8]byte
		copy(hdr[:4], magic[:])
		binary.LittleEndian.PutUint16(hdr[4:6], Version)
		if _, err := w.w.Write(hdr[:]); err != nil {
			return err
		}
	}
	n := frameHeaderLen + len(payload) + 4
	if cap(w.buf) < n {
		w.buf = make([]byte, 0, n+n/2)
	}
	b := w.buf[:0]
	b = append(b, byte(t))
	b = binary.LittleEndian.AppendUint32(b, uint32(lane))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	w.buf = b
	_, err := w.w.Write(b)
	return err
}

// Frame is one decoded frame. Payload aliases the reader's internal
// buffer only until the next ReadFrame call on small frames — it is
// always a fresh allocation here, so callers may retain it.
type Frame struct {
	Type    FrameType
	Lane    int
	Payload []byte
}

// Reader decodes a lanewire stream. It validates the magic and version
// on the first frame and every frame's CRC thereafter.
type Reader struct {
	r      *bufio.Reader
	opened bool
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// ReadFrame returns the next frame. A cleanly closed stream returns
// io.EOF exactly at a frame boundary; truncation inside a frame
// surfaces as io.ErrUnexpectedEOF.
func (r *Reader) ReadFrame() (Frame, error) {
	if !r.opened {
		var hdr [8]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Frame{}, fmt.Errorf("%w: truncated header", ErrBadMagic)
			}
			return Frame{}, err
		}
		if [4]byte(hdr[:4]) != magic {
			return Frame{}, fmt.Errorf("%w: got %q", ErrBadMagic, hdr[:4])
		}
		if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
			return Frame{}, fmt.Errorf("%w: stream v%d, reader v%d", ErrVersionMismatch, v, Version)
		}
		r.opened = true
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	plen := binary.LittleEndian.Uint32(hdr[5:9])
	if plen > maxPayload {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, plen)
	}
	body := make([]byte, frameHeaderLen+int(plen)+4)
	copy(body, hdr[:])
	if _, err := io.ReadFull(r.r, body[frameHeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	crcAt := len(body) - 4
	want := binary.LittleEndian.Uint32(body[crcAt:])
	if got := crc32.ChecksumIEEE(body[:crcAt]); got != want {
		return Frame{}, fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, want)
	}
	return Frame{
		Type:    FrameType(body[0]),
		Lane:    int(binary.LittleEndian.Uint32(body[1:5])),
		Payload: body[frameHeaderLen:crcAt],
	}, nil
}
