package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ritw/internal/measure"
)

// Job is one independent simulation run inside a batch: a Table-1
// combination, one interval of the Figure-6 sweep, one cell of an
// ablation grid, or one bootstrap replicate. Jobs must be independent
// — each owns its simulator, RNGs and dataset — which is what makes
// fanning them out across cores safe and bit-for-bit reproducible.
type Job struct {
	// Name labels the job in errors ("2C", "interval 30m0s", ...).
	Name string
	// Run executes the job. It must honour ctx cancellation.
	Run func(ctx context.Context) (*measure.Dataset, error)
}

// Runner executes batches of independent measurement runs on a
// bounded worker pool. Every batch entry point in this package
// (Table-1, the interval sweep, replicate grids) is built on it, so
// `ritw all` and the benchmarks saturate the machine instead of
// walking seven virtual hours one after another.
//
// Results never depend on the pool width: each run is seeded
// independently and simulated in its own virtual timeline, so the
// dataset for a given seed is byte-identical at parallelism 1 and N.
type Runner struct {
	// Parallelism is the worker-pool width (<= 0 means GOMAXPROCS).
	Parallelism int
}

// NewRunner builds a Runner from the shared options surface; only
// WithParallelism is consulted.
func NewRunner(opts ...Option) *Runner {
	return &Runner{Parallelism: NewRunOpts(opts...).parallelism()}
}

// RunJobs executes the jobs with at most Parallelism in flight and
// returns their datasets in job order. The first failure cancels the
// remaining jobs and is returned wrapped with the job's name; a
// cancelled ctx surfaces as ctx.Err().
func (r *Runner) RunJobs(ctx context.Context, jobs []Job) ([]*measure.Dataset, error) {
	return runJobs(ctx, r.Parallelism, jobs)
}

// runJobs is the pool core shared by Runner and the batch helpers.
func runJobs(ctx context.Context, parallelism int, jobs []Job) ([]*measure.Dataset, error) {
	if parallelism <= 0 {
		parallelism = NewRunOpts().parallelism()
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		out      = make([]*measure.Dataset, len(jobs))
		next     = make(chan int)
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // abandon the rest of the batch
		})
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ds, err := jobs[i].Run(ctx)
				if err != nil {
					if ctx.Err() != nil {
						fail(ctx.Err())
					} else {
						fail(fmt.Errorf("core: %s: %w", jobs[i].Name, err))
					}
					continue
				}
				out[i] = ds
			}
		}()
	}
	for i := range jobs {
		if ctx.Err() != nil {
			break // a job failed; stop feeding the pool
		}
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// parallelismFor resolves the batch's pool width: a WithParallelism
// passed to the call wins, otherwise the Runner's own setting.
func (r *Runner) parallelismFor(o RunOpts) int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return r.Parallelism
}

// Combination runs one Table-1 combination under the shared options.
func (r *Runner) Combination(ctx context.Context, comboID string, opts ...Option) (*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	combo, err := measure.CombinationByID(comboID)
	if err != nil {
		return nil, err
	}
	return measure.RunContext(ctx, o.runConfig(combo, 0))
}

// Table1 executes all seven Table-1 combinations concurrently and
// returns their datasets keyed by combination ID. Combination i runs
// at seed Seed+i, matching the serial API of earlier versions.
func (r *Runner) Table1(ctx context.Context, opts ...Option) (map[string]*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	combos := measure.Table1()
	jobs := make([]Job, len(combos))
	for i, combo := range combos {
		cfg := o.runConfig(combo, int64(i))
		jobs[i] = Job{Name: "combination " + combo.ID, Run: func(ctx context.Context) (*measure.Dataset, error) {
			return measure.RunContext(ctx, cfg)
		}}
	}
	dss, err := runJobs(ctx, r.parallelismFor(o), jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*measure.Dataset, len(combos))
	for i, combo := range combos {
		out[combo.ID] = dss[i]
	}
	return out, nil
}

// IntervalSweep re-runs combination 2C at each probing interval
// (Figure 6) concurrently and returns the datasets in interval order.
// Interval i runs at seed Seed+i, matching the serial API of earlier
// versions.
func (r *Runner) IntervalSweep(ctx context.Context, intervals []time.Duration, opts ...Option) ([]*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	combo, err := measure.CombinationByID("2C")
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(intervals))
	for i, ivl := range intervals {
		cfg := o.runConfig(combo, int64(i))
		cfg.Interval = ivl
		jobs[i] = Job{Name: fmt.Sprintf("interval %v", ivl), Run: func(ctx context.Context) (*measure.Dataset, error) {
			return measure.RunContext(ctx, cfg)
		}}
	}
	return runJobs(ctx, r.parallelismFor(o), jobs)
}

// Replicates runs the same combination n times at seeds Seed..Seed+n-1
// — the fan-out behind bootstrap confidence intervals and variance
// studies — and returns the datasets in seed order.
func (r *Runner) Replicates(ctx context.Context, comboID string, n int, opts ...Option) ([]*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	combo, err := measure.CombinationByID(comboID)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		cfg := o.runConfig(combo, int64(i))
		jobs[i] = Job{Name: fmt.Sprintf("%s replicate %d", comboID, i), Run: func(ctx context.Context) (*measure.Dataset, error) {
			return measure.RunContext(ctx, cfg)
		}}
	}
	return runJobs(ctx, r.parallelismFor(o), jobs)
}

// RunCombinationContext executes the paper's standard measurement for
// the named Table-1 combination under the options surface.
func RunCombinationContext(ctx context.Context, comboID string, opts ...Option) (*measure.Dataset, error) {
	return NewRunner(opts...).Combination(ctx, comboID, opts...)
}

// RunTable1Context executes all seven Table-1 combinations, fanned out
// across cores, and returns their datasets keyed by combination ID.
func RunTable1Context(ctx context.Context, opts ...Option) (map[string]*measure.Dataset, error) {
	return NewRunner(opts...).Table1(ctx, opts...)
}

// RunIntervalSweepContext runs the Figure-6 interval sweep, fanned out
// across cores, and returns the datasets in interval order.
func RunIntervalSweepContext(ctx context.Context, intervals []time.Duration, opts ...Option) ([]*measure.Dataset, error) {
	return NewRunner(opts...).IntervalSweep(ctx, intervals, opts...)
}
