package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/attacks"
	"ritw/internal/faults"
	"ritw/internal/measure"
	"ritw/internal/obs"
	"ritw/internal/resolver"
)

// Job is one independent simulation run inside a batch: a Table-1
// combination, one interval of the Figure-6 sweep, one cell of an
// ablation grid, or one bootstrap replicate. Jobs must be independent
// — each owns its simulator, RNGs and dataset — which is what makes
// fanning them out across cores safe and bit-for-bit reproducible.
type Job struct {
	// Name labels the job in errors ("2C", "interval 30m0s", ...).
	Name string
	// Run executes the job. It must honour ctx cancellation.
	Run func(ctx context.Context) (*measure.Dataset, error)
}

// Runner executes batches of independent measurement runs on a
// bounded worker pool. Every batch entry point in this package
// (Table-1, the interval sweep, replicate grids) is built on it, so
// `ritw all` and the benchmarks saturate the machine instead of
// walking seven virtual hours one after another.
//
// Results never depend on the pool width: each run is seeded
// independently and simulated in its own virtual timeline, so the
// dataset for a given seed is byte-identical at parallelism 1 and N.
type Runner struct {
	// Parallelism is the worker-pool width (<= 0 means GOMAXPROCS).
	Parallelism int
	// Metrics, if set, receives batch counters (jobs started/finished/
	// failed, per-batch wall-clock) and is handed to every run so the
	// whole stack aggregates into one registry.
	Metrics *obs.Registry
	// Progress, if set, is called after each job completes. Calls are
	// serialized, so a terminal reporter needs no locking of its own.
	Progress func(BatchProgress)
}

// BatchProgress is one live progress tick from a batch entry point.
type BatchProgress struct {
	// Batch names the batch ("table1", "interval sweep", ...).
	Batch string
	// Job names the job that just finished.
	Job string
	// Done and Total count completed and scheduled jobs; Failed is how
	// many of Done failed.
	Done, Total, Failed int
	// Err is the finished job's error, nil on success.
	Err error
}

// NewRunner builds a Runner from the shared options surface
// (WithParallelism, WithMetrics, WithProgress).
func NewRunner(opts ...Option) *Runner {
	o := NewRunOpts(opts...)
	return &Runner{Parallelism: o.parallelism(), Metrics: o.Metrics, Progress: o.Progress}
}

// RunJobs executes the jobs with at most Parallelism in flight and
// returns their datasets in job order. The first failure cancels the
// remaining jobs and is returned wrapped with the job's name; a
// cancelled ctx surfaces as ctx.Err().
func (r *Runner) RunJobs(ctx context.Context, jobs []Job) ([]*measure.Dataset, error) {
	return runJobs(ctx, r.Parallelism, "jobs", jobs, r.Metrics, r.Progress)
}

// runJobs is the pool core shared by Runner and the batch helpers.
// reg and progress may be nil; both observe only and never affect the
// datasets.
func runJobs(ctx context.Context, parallelism int, batch string, jobs []Job, reg *obs.Registry, progress func(BatchProgress)) ([]*measure.Dataset, error) {
	if parallelism <= 0 {
		parallelism = NewRunOpts().parallelism()
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	started := reg.Counter("runner_jobs_started_total")
	finished := reg.Counter("runner_jobs_finished_total")
	failedC := reg.Counter("runner_jobs_failed_total")
	t0 := time.Now()
	defer func() {
		reg.Gauge(obs.LabelName("runner_batch_wallclock_ms", "batch", batch)).
			Set(float64(time.Since(t0)) / float64(time.Millisecond))
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		out      = make([]*measure.Dataset, len(jobs))
		next     = make(chan int)
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error

		progMu       sync.Mutex
		done, failed int
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // abandon the rest of the batch
		})
	}
	finishJob := func(name string, err error) {
		if err != nil {
			failedC.Inc()
		} else {
			finished.Inc()
		}
		if progress == nil {
			return
		}
		progMu.Lock()
		done++
		if err != nil {
			failed++
		}
		progress(BatchProgress{
			Batch: batch, Job: name,
			Done: done, Total: len(jobs), Failed: failed, Err: err,
		})
		progMu.Unlock()
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				started.Inc()
				ds, err := jobs[i].Run(ctx)
				finishJob(jobs[i].Name, err)
				if err != nil {
					if ctx.Err() != nil {
						fail(ctx.Err())
					} else {
						fail(fmt.Errorf("core: %s: %w", jobs[i].Name, err))
					}
					continue
				}
				out[i] = ds
			}
		}()
	}
	for i := range jobs {
		if ctx.Err() != nil {
			break // a job failed; stop feeding the pool
		}
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// obsFor resolves a batch's registry and progress hook: per-call
// options win over the Runner's own settings.
func (r *Runner) obsFor(o RunOpts) (*obs.Registry, func(BatchProgress)) {
	reg, progress := r.Metrics, r.Progress
	if o.Metrics != nil {
		reg = o.Metrics
	}
	if o.Progress != nil {
		progress = o.Progress
	}
	return reg, progress
}

// parallelismFor resolves the batch's pool width: a WithParallelism
// passed to the call wins, otherwise the Runner's own setting.
func (r *Runner) parallelismFor(o RunOpts) int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return r.Parallelism
}

// Combination runs one Table-1 combination under the shared options.
func (r *Runner) Combination(ctx context.Context, comboID string, opts ...Option) (*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	o.Metrics, _ = r.obsFor(o)
	combo, err := measure.CombinationByID(comboID)
	if err != nil {
		return nil, err
	}
	return measure.RunContext(ctx, o.runConfig(combo, 0, combo.ID))
}

// Table1 executes all seven Table-1 combinations concurrently and
// returns their datasets keyed by combination ID. Combination i runs
// at seed Seed+i, matching the serial API of earlier versions.
func (r *Runner) Table1(ctx context.Context, opts ...Option) (map[string]*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	reg, progress := r.obsFor(o)
	o.Metrics = reg // flow the resolved registry into each run config
	combos := measure.Table1()
	jobs := make([]Job, len(combos))
	for i, combo := range combos {
		cfg := o.runConfig(combo, int64(i), combo.ID)
		jobs[i] = Job{Name: "combination " + combo.ID, Run: func(ctx context.Context) (*measure.Dataset, error) {
			return measure.RunContext(ctx, cfg)
		}}
	}
	dss, err := runJobs(ctx, r.parallelismFor(o), "table1", jobs, reg, progress)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*measure.Dataset, len(combos))
	for i, combo := range combos {
		out[combo.ID] = dss[i]
	}
	return out, nil
}

// IntervalSweep re-runs combination 2C at each probing interval
// (Figure 6) concurrently and returns the datasets in interval order.
// Interval i runs at seed Seed+i, matching the serial API of earlier
// versions.
func (r *Runner) IntervalSweep(ctx context.Context, intervals []time.Duration, opts ...Option) ([]*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	reg, progress := r.obsFor(o)
	o.Metrics = reg
	combo, err := measure.CombinationByID("2C")
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(intervals))
	for i, ivl := range intervals {
		cfg := o.runConfig(combo, int64(i), ivl.String())
		cfg.Interval = ivl
		jobs[i] = Job{Name: fmt.Sprintf("interval %v", ivl), Run: func(ctx context.Context) (*measure.Dataset, error) {
			return measure.RunContext(ctx, cfg)
		}}
	}
	return runJobs(ctx, r.parallelismFor(o), "interval sweep", jobs, reg, progress)
}

// Replicates runs the same combination n times at seeds Seed..Seed+n-1
// — the fan-out behind bootstrap confidence intervals and variance
// studies — and returns the datasets in seed order.
func (r *Runner) Replicates(ctx context.Context, comboID string, n int, opts ...Option) ([]*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	reg, progress := r.obsFor(o)
	o.Metrics = reg
	combo, err := measure.CombinationByID(comboID)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		cfg := o.runConfig(combo, int64(i), fmt.Sprintf("%s/%d", comboID, i))
		jobs[i] = Job{Name: fmt.Sprintf("%s replicate %d", comboID, i), Run: func(ctx context.Context) (*measure.Dataset, error) {
			return measure.RunContext(ctx, cfg)
		}}
	}
	return runJobs(ctx, r.parallelismFor(o), fmt.Sprintf("%s replicates", comboID), jobs, reg, progress)
}

// Scenario is one named fault experiment: a combination, a fault
// schedule, and optionally a resolver backoff override. Scenario
// batches run every entry at the SAME seed (offset 0), so the
// populations and healthy traffic are identical across scenarios and
// any difference in outcome is attributable to the schedule alone.
type Scenario struct {
	// Name labels the scenario and is its SinkFor key.
	Name string
	// ComboID selects the authoritative deployment (default "2B").
	ComboID string
	// Faults is the scenario's fault schedule (nil = healthy baseline).
	Faults *faults.Schedule
	// Backoff overrides the resolvers' hold-down policy for this
	// scenario only (nil = the batch default from WithBackoff, or
	// resolver.DefaultBackoff).
	Backoff *resolver.BackoffConfig
	// Attacks is the scenario's adversarial traffic schedule (nil = no
	// attacks). Attack campaigns compile on their own keyed stream, so
	// adding one leaves the benign traffic byte-identical.
	Attacks *attacks.Schedule
	// Defense configures the resolvers' attack mitigations (MaxFetch
	// budget, negative-cache toggle) for this scenario.
	Defense attacks.Defenses
	// Mix re-draws every resolver's behaviour from this share table for
	// this scenario only (see measure.RunConfig.Mix). The re-draw is
	// entity-keyed and consumes no population randomness, so scenarios
	// differing only in Mix share identical topologies and traffic
	// schedules — differences in outcome are the fleet's alone.
	Mix []atlas.PolicyShare
	// PublicDNSShare, when positive, overrides the population's
	// public-resolver share for this scenario — the centralization
	// battery's knob (30–70% of VPs behind shared anycast resolvers).
	// Unlike Mix this regenerates the population, so it changes the
	// topology; compare such scenarios by their aggregate shapes, not
	// record-for-record.
	PublicDNSShare float64
}

// scenarioConfig resolves the exact measure.RunConfig a scenario batch
// executes for sc: the shared options surface, then the scenario's own
// overrides on top.
func (o RunOpts) scenarioConfig(sc Scenario) (measure.RunConfig, error) {
	comboID := sc.ComboID
	if comboID == "" {
		comboID = "2B"
	}
	combo, err := measure.CombinationByID(comboID)
	if err != nil {
		return measure.RunConfig{}, fmt.Errorf("core: scenario %s: %w", sc.Name, err)
	}
	cfg := o.runConfig(combo, 0, sc.Name)
	cfg.Faults = sc.Faults
	cfg.Attacks = sc.Attacks
	cfg.Defense = sc.Defense
	if sc.Backoff != nil {
		cfg.Backoff = sc.Backoff
	}
	if len(sc.Mix) > 0 {
		cfg.Mix = sc.Mix
	}
	if sc.PublicDNSShare > 0 {
		cfg.Population.PublicDNSShare = sc.PublicDNSShare
	}
	if err := sc.Faults.Validate(); err != nil {
		return measure.RunConfig{}, fmt.Errorf("core: scenario %s: %w", sc.Name, err)
	}
	if err := sc.Attacks.Validate(); err != nil {
		return measure.RunConfig{}, fmt.Errorf("core: scenario %s: %w", sc.Name, err)
	}
	return cfg, nil
}

// ScenarioRunConfig exposes the resolved per-scenario RunConfig so
// callers can replay a scenario's plan stage without running it —
// notably measure.PolicyAssignment, which per-policy analyses need to
// classify a mixed run's vantage points. Sink-related options are
// ignored: the returned config never owns a sink.
func ScenarioRunConfig(sc Scenario, opts ...Option) (measure.RunConfig, error) {
	o := NewRunOpts(opts...)
	o.SinkFor = nil
	o.StreamOnly = false
	return o.scenarioConfig(sc)
}

// Scenarios executes the fault scenarios concurrently and returns
// their datasets in scenario order.
func (r *Runner) Scenarios(ctx context.Context, scenarios []Scenario, opts ...Option) ([]*measure.Dataset, error) {
	o := NewRunOpts(opts...)
	reg, progress := r.obsFor(o)
	o.Metrics = reg
	jobs := make([]Job, len(scenarios))
	for i, sc := range scenarios {
		cfg, err := o.scenarioConfig(sc)
		if err != nil {
			return nil, err
		}
		jobs[i] = Job{Name: "scenario " + sc.Name, Run: func(ctx context.Context) (*measure.Dataset, error) {
			return measure.RunContext(ctx, cfg)
		}}
	}
	return runJobs(ctx, r.parallelismFor(o), "scenarios", jobs, reg, progress)
}

// RunScenariosContext executes the fault scenarios, fanned out across
// cores, and returns their datasets in scenario order.
func RunScenariosContext(ctx context.Context, scenarios []Scenario, opts ...Option) ([]*measure.Dataset, error) {
	return NewRunner(opts...).Scenarios(ctx, scenarios, opts...)
}

// RunCombinationContext executes the paper's standard measurement for
// the named Table-1 combination under the options surface.
func RunCombinationContext(ctx context.Context, comboID string, opts ...Option) (*measure.Dataset, error) {
	return NewRunner(opts...).Combination(ctx, comboID, opts...)
}

// RunTable1Context executes all seven Table-1 combinations, fanned out
// across cores, and returns their datasets keyed by combination ID.
func RunTable1Context(ctx context.Context, opts ...Option) (map[string]*measure.Dataset, error) {
	return NewRunner(opts...).Table1(ctx, opts...)
}

// RunIntervalSweepContext runs the Figure-6 interval sweep, fanned out
// across cores, and returns the datasets in interval order.
func RunIntervalSweepContext(ctx context.Context, intervals []time.Duration, opts ...Option) ([]*measure.Dataset, error) {
	return NewRunner(opts...).IntervalSweep(ctx, intervals, opts...)
}
