// Package core is the library's front door: it ties the measurement
// fabric (internal/measure, internal/ditl), the analyses
// (internal/analysis) and the deployment planner together behind a
// small API, mirroring the paper's structure — measure how recursives
// choose authoritatives (§4), validate against production traffic
// (§5), and turn the findings into engineering guidance (§7).
package core

import (
	"time"

	"ritw/internal/analysis"
	"ritw/internal/ditl"
)

// Scale selects the size of a reproduction run. Full scale matches the
// paper (~9,700 probes); smaller scales keep the same structure with
// proportionally fewer vantage points, for tests and quick looks.
type Scale int

// Predefined scales.
const (
	// ScaleSmall is for unit tests and smoke runs (~800 probes).
	ScaleSmall Scale = iota
	// ScaleMedium is for benchmarks (~2,500 probes).
	ScaleMedium
	// ScaleFull is the paper's population (~9,700 probes).
	ScaleFull
)

// Probes returns the probe count for the scale.
func (s Scale) Probes() int {
	switch s {
	case ScaleSmall:
		return 800
	case ScaleMedium:
		return 2500
	default:
		return 9700
	}
}

// Figure6Intervals are the probing intervals of the paper's Figure 6.
func Figure6Intervals() []time.Duration {
	return []time.Duration{
		2 * time.Minute, 5 * time.Minute, 10 * time.Minute,
		15 * time.Minute, 20 * time.Minute, 30 * time.Minute,
	}
}

// RunRootTrace synthesizes the DITL-style root capture (Figure 7 top)
// and returns its rank bands alongside the trace.
func RunRootTrace(seed int64, scale Scale) (*ditl.Trace, analysis.RankBands, error) {
	cfg := ditl.DefaultRootConfig(seed)
	cfg.NumRecursives = scale.Probes() / 8
	cfg.MinRate = 60 // keep a healthy busy (>=250 q/h) population at small scales
	trace, err := ditl.Run(cfg)
	if err != nil {
		return nil, analysis.RankBands{}, err
	}
	rb := analysis.Ranks(trace.PerRecursive(), len(trace.Observed), 250)
	return trace, rb, nil
}

// RunNLTrace synthesizes the .nl capture (Figure 7 bottom).
func RunNLTrace(seed int64, scale Scale) (*ditl.Trace, analysis.RankBands, error) {
	cfg := ditl.DefaultNLConfig(seed)
	cfg.NumRecursives = scale.Probes() / 8
	cfg.MinRate = 60 // keep a healthy busy (>=250 q/h) population at small scales
	trace, err := ditl.Run(cfg)
	if err != nil {
		return nil, analysis.RankBands{}, err
	}
	// Half the NSes are observed, so halve the busy threshold.
	rb := analysis.Ranks(trace.PerRecursive(), len(trace.Observed), 125)
	return trace, rb, nil
}
