package core

import (
	"runtime"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/faults"
	"ritw/internal/measure"
	"ritw/internal/netsim"
	"ritw/internal/obs"
	"ritw/internal/resolver"
)

// RunOpts is the shared configuration surface of every experiment
// entry point: single combinations, the Table-1 batch, the Figure-6
// interval sweep, ablation grids and bootstrap replicates all read
// the same knobs. Construct it with NewRunOpts and the With* options;
// the zero value of each field means "use the paper's default".
type RunOpts struct {
	// Seed drives all randomness. Batch entry points derive per-run
	// seeds from it (run i gets Seed+i), so one seed pins an entire
	// grid.
	Seed int64
	// Scale selects the probe population size (default ScaleSmall).
	Scale Scale
	// Probes overrides Scale's probe count when positive.
	Probes int
	// Parallelism bounds how many independent runs execute
	// concurrently (default GOMAXPROCS). It affects wall-clock time
	// only, never results: each run is deterministic in its seed.
	Parallelism int
	// Interval overrides the probing cadence (default: the paper's
	// 2 minutes, via measure.DefaultRunConfig).
	Interval time.Duration
	// Metrics, if set, aggregates obs counters across every run in the
	// batch (simulator events, packets, engine counters, runner job
	// counts). Counters are additive so concurrent runs can share it;
	// it never influences results.
	Metrics *obs.Registry
	// Progress, if set, is called after every job in a batch finishes.
	// Calls are serialized by the runner.
	Progress func(BatchProgress)
	// SinkFor, if set, supplies a streaming sink per run; records are
	// pushed into it as they complete instead of (or, without
	// StreamOnly, in addition to) being materialized. The key is the
	// run's identity within its batch: the combination ID for Table-1
	// runs, the interval string for the Figure-6 sweep, and
	// "<combo>/<index>" for replicates. Each run closes its own sink,
	// and batch runs call SinkFor concurrently, so it must be safe for
	// concurrent use and return independent sinks.
	SinkFor func(key string) measure.Sink
	// StreamOnly drops record materialization: runs return summary-only
	// datasets and records exist solely in the SinkFor sinks. This is
	// the bounded-memory batch mode — peak memory stops scaling with
	// population size.
	StreamOnly bool
	// Faults applies a fault schedule to every run in the batch (see
	// measure.RunConfig.Faults). Scenario batches override it per run.
	Faults *faults.Schedule
	// Backoff overrides the resolver population's hold-down policy for
	// every run (nil keeps resolver.DefaultBackoff).
	Backoff *resolver.BackoffConfig
	// Mix, if non-empty, re-draws every resolver's behaviour from this
	// share table on the run's entity-keyed mix stream (see
	// measure.RunConfig.Mix). nil keeps the population's own kinds.
	Mix []atlas.PolicyShare
	// Shards splits each run's VP population into that many concurrent
	// simulation lanes (see measure.RunConfig.Shards). Results are
	// byte-identical at any shard count; shards only change wall-clock
	// time, which is what makes million-VP runs tractable.
	Shards int
	// Scheduler selects each lane's event scheduler (see
	// measure.RunConfig.Scheduler; default the reference binary heap).
	// Like Shards it is a wall-clock knob only — both schedulers
	// produce byte-identical datasets.
	Scheduler netsim.SchedulerKind
	// Workers distributes each run's lanes over that many `ritw
	// lane-worker` subprocesses speaking the lanewire protocol (see
	// measure.RunConfig.Workers). 0 keeps every lane in-process.
	// Another wall-clock knob: datasets are byte-identical at any
	// process layout.
	Workers int
	// SnapshotFor, if set, supplies a snapshot/resume spec per run,
	// keyed like SinkFor (see measure.RunConfig.Snapshot and the key
	// scheme on SinkFor). Returning nil leaves that run without
	// checkpointing. Like SinkFor it is called once per run,
	// concurrently across a batch.
	SnapshotFor func(key string) *measure.SnapshotSpec
}

// Option mutates RunOpts; the With* constructors below are the public
// vocabulary.
type Option func(*RunOpts)

// NewRunOpts applies opts over the defaults (seed 0, ScaleSmall,
// paper probing cadence, GOMAXPROCS-wide parallelism).
func NewRunOpts(opts ...Option) RunOpts {
	var o RunOpts
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithSeed pins the run's randomness.
func WithSeed(seed int64) Option {
	return func(o *RunOpts) { o.Seed = seed }
}

// WithScale selects the probe population size.
func WithScale(s Scale) Option {
	return func(o *RunOpts) { o.Scale = s }
}

// WithProbes overrides the scale's probe count exactly; n <= 0 keeps
// the scale's default.
func WithProbes(n int) Option {
	return func(o *RunOpts) { o.Probes = n }
}

// WithParallelism bounds concurrent runs in batch entry points; n <= 0
// restores the GOMAXPROCS default.
func WithParallelism(n int) Option {
	return func(o *RunOpts) { o.Parallelism = n }
}

// WithInterval overrides the probing cadence of every run (the
// interval sweep sets per-run intervals itself and ignores this).
func WithInterval(d time.Duration) Option {
	return func(o *RunOpts) { o.Interval = d }
}

// WithMetrics aggregates batch-wide obs counters into r.
func WithMetrics(r *obs.Registry) Option {
	return func(o *RunOpts) { o.Metrics = r }
}

// WithProgress reports live batch completion to fn (serialized).
func WithProgress(fn func(BatchProgress)) Option {
	return func(o *RunOpts) { o.Progress = fn }
}

// WithSink streams every run's records into the sink f returns for the
// run's batch key (see RunOpts.SinkFor for the key scheme). f is
// called once per run, concurrently across a batch.
func WithSink(f func(key string) measure.Sink) Option {
	return func(o *RunOpts) { o.SinkFor = f }
}

// WithStreamOnly stops runs from materializing records; combined with
// WithSink it is the bounded-memory batch mode.
func WithStreamOnly(on bool) Option {
	return func(o *RunOpts) { o.StreamOnly = on }
}

// WithFaults applies a fault schedule to every run in the batch.
func WithFaults(s *faults.Schedule) Option {
	return func(o *RunOpts) { o.Faults = s }
}

// WithBackoff overrides the resolvers' hold-down policy in every run.
func WithBackoff(b *resolver.BackoffConfig) Option {
	return func(o *RunOpts) { o.Backoff = b }
}

// WithMix re-draws every resolver's behaviour (kind, infra cache,
// singleflight, qname minimization) from the share table, entity-keyed
// so datasets stay byte-identical at any shard/worker/scheduler layout
// (see measure.RunConfig.Mix). nil keeps the population's own kinds.
func WithMix(mix []atlas.PolicyShare) Option {
	return func(o *RunOpts) { o.Mix = mix }
}

// WithShards runs each simulation split across n concurrent lanes
// (n <= 1 keeps the single lane). Datasets are byte-identical at any
// shard count; only wall-clock time changes.
func WithShards(n int) Option {
	return func(o *RunOpts) { o.Shards = n }
}

// WithScheduler selects the simulator's event scheduler for every lane
// (netsim.SchedHeap, the default reference heap, or netsim.SchedWheel,
// the timing wheel — faster at large event depths). Datasets are
// byte-identical under either scheduler; only wall-clock time changes.
func WithScheduler(k netsim.SchedulerKind) Option {
	return func(o *RunOpts) { o.Scheduler = k }
}

// WithWorkers distributes each run's lanes over n `ritw lane-worker`
// subprocesses (n <= 0 keeps lanes in-process). Like WithShards this
// never changes results — only wall-clock time and the process layout.
func WithWorkers(n int) Option {
	return func(o *RunOpts) {
		if n < 0 {
			n = 0
		}
		o.Workers = n
	}
}

// WithSnapshot checkpoints every run at instant boundaries using the
// spec f returns for the run's batch key (nil skips that run). A spec
// whose Resume flag is set continues an interrupted run from its last
// checkpoint instead of starting over; see measure.SnapshotSpec.
func WithSnapshot(f func(key string) *measure.SnapshotSpec) Option {
	return func(o *RunOpts) { o.SnapshotFor = f }
}

// probes resolves the effective probe count.
func (o RunOpts) probes() int {
	if o.Probes > 0 {
		return o.Probes
	}
	return o.Scale.Probes()
}

// parallelism resolves the effective worker count.
func (o RunOpts) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runConfig builds the measure.RunConfig for one run of combo at
// seed offset off (batch entry points space runs by their index).
// key identifies the run to SinkFor.
func (o RunOpts) runConfig(combo measure.Combination, off int64, key string) measure.RunConfig {
	seed := o.Seed + off
	cfg := measure.DefaultRunConfig(combo, seed)
	pc := atlas.DefaultConfig(seed)
	pc.NumProbes = o.probes()
	cfg.Population = pc
	if o.Interval > 0 {
		cfg.Interval = o.Interval
	}
	cfg.Metrics = o.Metrics
	if o.SinkFor != nil {
		cfg.Sink = o.SinkFor(key)
	}
	cfg.StreamOnly = o.StreamOnly
	cfg.Faults = o.Faults
	cfg.Backoff = o.Backoff
	cfg.Mix = o.Mix
	cfg.Shards = o.Shards
	cfg.Scheduler = o.Scheduler
	cfg.Workers = o.Workers
	if o.SnapshotFor != nil {
		cfg.Snapshot = o.SnapshotFor(key)
	}
	return cfg
}
