package core

import (
	"runtime"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/measure"
	"ritw/internal/obs"
)

// RunOpts is the shared configuration surface of every experiment
// entry point: single combinations, the Table-1 batch, the Figure-6
// interval sweep, ablation grids and bootstrap replicates all read
// the same knobs. Construct it with NewRunOpts and the With* options;
// the zero value of each field means "use the paper's default".
type RunOpts struct {
	// Seed drives all randomness. Batch entry points derive per-run
	// seeds from it (run i gets Seed+i), so one seed pins an entire
	// grid.
	Seed int64
	// Scale selects the probe population size (default ScaleSmall).
	Scale Scale
	// Probes overrides Scale's probe count when positive.
	Probes int
	// Parallelism bounds how many independent runs execute
	// concurrently (default GOMAXPROCS). It affects wall-clock time
	// only, never results: each run is deterministic in its seed.
	Parallelism int
	// Interval overrides the probing cadence (default: the paper's
	// 2 minutes, via measure.DefaultRunConfig).
	Interval time.Duration
	// Metrics, if set, aggregates obs counters across every run in the
	// batch (simulator events, packets, engine counters, runner job
	// counts). Counters are additive so concurrent runs can share it;
	// it never influences results.
	Metrics *obs.Registry
	// Progress, if set, is called after every job in a batch finishes.
	// Calls are serialized by the runner.
	Progress func(BatchProgress)
}

// Option mutates RunOpts; the With* constructors below are the public
// vocabulary.
type Option func(*RunOpts)

// NewRunOpts applies opts over the defaults (seed 0, ScaleSmall,
// paper probing cadence, GOMAXPROCS-wide parallelism).
func NewRunOpts(opts ...Option) RunOpts {
	var o RunOpts
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithSeed pins the run's randomness.
func WithSeed(seed int64) Option {
	return func(o *RunOpts) { o.Seed = seed }
}

// WithScale selects the probe population size.
func WithScale(s Scale) Option {
	return func(o *RunOpts) { o.Scale = s }
}

// WithProbes overrides the scale's probe count exactly; n <= 0 keeps
// the scale's default.
func WithProbes(n int) Option {
	return func(o *RunOpts) { o.Probes = n }
}

// WithParallelism bounds concurrent runs in batch entry points; n <= 0
// restores the GOMAXPROCS default.
func WithParallelism(n int) Option {
	return func(o *RunOpts) { o.Parallelism = n }
}

// WithInterval overrides the probing cadence of every run (the
// interval sweep sets per-run intervals itself and ignores this).
func WithInterval(d time.Duration) Option {
	return func(o *RunOpts) { o.Interval = d }
}

// WithMetrics aggregates batch-wide obs counters into r.
func WithMetrics(r *obs.Registry) Option {
	return func(o *RunOpts) { o.Metrics = r }
}

// WithProgress reports live batch completion to fn (serialized).
func WithProgress(fn func(BatchProgress)) Option {
	return func(o *RunOpts) { o.Progress = fn }
}

// probes resolves the effective probe count.
func (o RunOpts) probes() int {
	if o.Probes > 0 {
		return o.Probes
	}
	return o.Scale.Probes()
}

// parallelism resolves the effective worker count.
func (o RunOpts) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runConfig builds the measure.RunConfig for one run of combo at
// seed offset off (batch entry points space runs by their index).
func (o RunOpts) runConfig(combo measure.Combination, off int64) measure.RunConfig {
	seed := o.Seed + off
	cfg := measure.DefaultRunConfig(combo, seed)
	pc := atlas.DefaultConfig(seed)
	pc.NumProbes = o.probes()
	cfg.Population = pc
	if o.Interval > 0 {
		cfg.Interval = o.Interval
	}
	cfg.Metrics = o.Metrics
	return cfg
}
