package core

import (
	"context"
	"io"
	"net/netip"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/ditl"
	"ritw/internal/measure"
)

// RunCombinationAggregated runs one Table-1 combination in stream-only
// mode straight into an analysis aggregator: the record slices are
// never materialized, so peak memory is bounded by the aggregator's
// per-VP state rather than the population's query volume. The returned
// dataset is summary-only (ActiveProbes, sites, duration).
func RunCombinationAggregated(ctx context.Context, comboID string, aggCfg analysis.AggConfig, opts ...Option) (*analysis.Aggregator, *measure.Dataset, error) {
	combo, err := measure.CombinationByID(comboID)
	if err != nil {
		return nil, nil, err
	}
	if aggCfg.ComboID == "" {
		aggCfg.ComboID = combo.ID
	}
	if aggCfg.Sites == nil {
		aggCfg.Sites = combo.Sites
	}
	o := NewRunOpts(opts...)
	cfg := o.runConfig(combo, 0, combo.ID)
	if aggCfg.Duration == 0 {
		aggCfg.Duration = cfg.Duration
	}
	if aggCfg.Metrics == nil {
		aggCfg.Metrics = o.Metrics
	}
	agg := analysis.NewAggregator(aggCfg)
	summary, err := measure.RunStreamContext(ctx, cfg, agg)
	if err != nil {
		return nil, nil, err
	}
	return agg, summary, nil
}

// TraceStream is the result of a streaming Figure-7 capture: the trace
// summary (count tables discarded), the rank aggregator the capture fed
// record by record, and the bands at the figure's query threshold.
type TraceStream struct {
	Trace *ditl.Trace
	Agg   *analysis.RankAgg
	Bands analysis.RankBands
}

// runTraceStream synthesizes a production trace with counts discarded,
// folding the capture into a rank aggregator as it happens.
func runTraceStream(cfg ditl.Config, minQueries int) (*TraceStream, error) {
	agg := analysis.NewRankAgg()
	cfg.DiscardCounts = true
	prev := cfg.Recorder
	cfg.Recorder = func(server string, src netip.Addr, at time.Duration) {
		agg.Observe(src.String(), server, 1)
		if prev != nil {
			prev(server, src, at)
		}
	}
	trace, err := ditl.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &TraceStream{
		Trace: trace,
		Agg:   agg,
		Bands: agg.Bands(len(trace.Observed), minQueries),
	}, nil
}

// RunRootTraceStream is the streaming variant of RunRootTrace: the
// capture feeds a rank aggregator directly and the count table is
// never built. The returned trace carries only the capture summary.
// Bands are identical to RunRootTrace's at the same seed.
func RunRootTraceStream(seed int64, scale Scale) (*TraceStream, error) {
	cfg := ditl.DefaultRootConfig(seed)
	cfg.NumRecursives = scale.Probes() / 8
	cfg.MinRate = 60
	return runTraceStream(cfg, 250)
}

// RunNLTraceStream is the streaming variant of RunNLTrace.
func RunNLTraceStream(seed int64, scale Scale) (*TraceStream, error) {
	cfg := ditl.DefaultNLConfig(seed)
	cfg.NumRecursives = scale.Probes() / 8
	cfg.MinRate = 60
	return runTraceStream(cfg, 125)
}

// RanksFromTraceCSV streams a trace CSV (ditl.WriteCSV's format) into
// the Figure-7 rank analysis without materializing the trace.
// totalServers <= 0 uses the number of distinct servers in the file.
func RanksFromTraceCSV(r io.Reader, totalServers, minQueries int) (analysis.RankBands, error) {
	agg := analysis.NewRankAgg()
	servers := make(map[string]bool)
	err := ditl.StreamCSV(r, func(server, rec string, n int) error {
		servers[server] = true
		agg.Observe(rec, server, n)
		return nil
	})
	if err != nil {
		return analysis.RankBands{}, err
	}
	if totalServers <= 0 {
		totalServers = len(servers)
	}
	return agg.Bands(totalServers, minQueries), nil
}
