package core_test

import (
	"context"
	"fmt"
	"log"

	"ritw/internal/analysis"
	"ritw/internal/core"
	"ritw/internal/geo"
)

// ExampleRunCombinationContext reproduces the paper's headline
// measurement: deploy combination 2C (Frankfurt + Sydney), probe it
// for a virtual hour, and classify the per-recursive preferences.
func ExampleRunCombinationContext() {
	ds, err := core.RunCombinationContext(context.Background(), "2C",
		core.WithSeed(1), core.WithScale(core.ScaleSmall))
	if err != nil {
		log.Fatal(err)
	}
	pref := analysis.Preference(ds)
	fmt.Printf("qualified VPs: %d, weak: %.0f%%, strong: %.0f%%\n",
		pref.QualifiedVPs, 100*pref.WeakFrac, 100*pref.StrongFrac)
	// Not asserting exact output: the run is stochastic by seed.
}

// ExampleEvaluate applies the §7 deployment planner to the paper's
// .nl case study.
func ExampleEvaluate() {
	report, err := core.Evaluate(core.NLCurrent(), core.DefaultPlannerConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst authoritative: %s (unicast=%v)\n",
		report.WorstAuthName, !report.PerAuth[len(report.PerAuth)-1].Anycast)
	// Output: worst authoritative: ns5 (unicast=true)
}

// ExampleQueriesFromRegionShare quantifies how much of a unicast Dutch
// authoritative's traffic comes from across the Atlantic.
func ExampleQueriesFromRegionShare() {
	share, err := core.QueriesFromRegionShare(core.NLCurrent(), "ns1",
		geo.NorthAmerica, core.DefaultPlannerConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meaningful share: %v\n", share > 0.03)
	// Output: meaningful share: true
}
