package core

import (
	"context"
	"testing"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/geo"
)

func TestScaleProbes(t *testing.T) {
	if ScaleSmall.Probes() >= ScaleMedium.Probes() || ScaleMedium.Probes() >= ScaleFull.Probes() {
		t.Error("scales must be ordered")
	}
	if ScaleFull.Probes() != 9700 {
		t.Errorf("full scale = %d, want the paper's 9700", ScaleFull.Probes())
	}
}

func TestRunCombinationSmall(t *testing.T) {
	ctx := context.Background()
	ds, err := RunCombinationContext(ctx, "2B", WithSeed(3), WithScale(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	if ds.ComboID != "2B" || len(ds.Records) == 0 {
		t.Fatalf("dataset = %s records=%d", ds.ComboID, len(ds.Records))
	}
	if _, err := RunCombinationContext(ctx, "9Z", WithSeed(3), WithScale(ScaleSmall)); err == nil {
		t.Error("unknown combination should fail")
	}
}

func TestFigure6Intervals(t *testing.T) {
	ivls := Figure6Intervals()
	if len(ivls) != 6 || ivls[0] != 2*time.Minute || ivls[5] != 30*time.Minute {
		t.Errorf("intervals = %v", ivls)
	}
	for i := 1; i < len(ivls); i++ {
		if ivls[i] <= ivls[i-1] {
			t.Error("intervals must increase")
		}
	}
}

func TestRunIntervalSweepTiny(t *testing.T) {
	dss, err := RunIntervalSweepContext(context.Background(),
		[]time.Duration{2 * time.Minute, 30 * time.Minute},
		WithSeed(5), WithScale(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 2 {
		t.Fatalf("datasets = %d", len(dss))
	}
	if dss[0].Interval != 2*time.Minute || dss[1].Interval != 30*time.Minute {
		t.Errorf("intervals = %v, %v", dss[0].Interval, dss[1].Interval)
	}
	// Figure 6's shape: the FRA preference is strongest at the fastest
	// cadence.
	fast := analysis.SiteShareByContinent(dss[0], "FRA")
	slow := analysis.SiteShareByContinent(dss[1], "FRA")
	euFast, euSlow := fast[geo.Europe], slow[geo.Europe]
	if euFast <= 0.5 {
		t.Errorf("EU share to FRA at 2min = %.2f, want majority", euFast)
	}
	if euSlow > euFast+0.02 {
		t.Errorf("preference should not strengthen with slower probing: 2min=%.2f 30min=%.2f",
			euFast, euSlow)
	}
}

func TestRunRootAndNLTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs both DITL traces end to end")
	}
	trace, rb, err := RunRootTrace(11, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Observed) != 10 || rb.Recursives == 0 {
		t.Errorf("root trace observed=%d busy=%d", len(trace.Observed), rb.Recursives)
	}
	nlTrace, nlRB, err := RunNLTrace(11, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(nlTrace.Observed) != 4 || nlRB.Recursives == 0 {
		t.Errorf("nl trace observed=%d busy=%d", len(nlTrace.Observed), nlRB.Recursives)
	}
	// The paper's §5 contrast: far more .nl recursives use every
	// observed NS than root recursives use every letter.
	if nlRB.All <= rb.All {
		t.Errorf(".nl all-NS share %.2f should exceed root all-letter share %.2f",
			nlRB.All, rb.All)
	}
}
