package core

import (
	"context"
	"os"
	"runtime"
	"testing"
	"time"

	"ritw/internal/analysis"
)

// streamingRetainedBudget bounds the live heap the streaming figure
// pipeline may retain at ScaleSmall. The recorded baseline is ~0.5 MiB
// against ~4.8 MiB materialized (see BENCH.md); 2 MiB of headroom
// absorbs GC timing noise while still catching the failure this guards
// against — an aggregator accidentally holding on to record slices.
const streamingRetainedBudget = 2 << 20

// TestBenchGateStreamingRetainedHeap is the CI regression gate for
// BenchmarkStreamingVsMaterialized: the streaming path's retained heap
// must stay under the checked-in budget and well under the
// materialized path's, or bounded-memory batch mode has quietly
// stopped being bounded. Gated behind RITW_BENCH_GATE=1.
func TestBenchGateStreamingRetainedHeap(t *testing.T) {
	if os.Getenv("RITW_BENCH_GATE") == "" {
		t.Skip("set RITW_BENCH_GATE=1 to run the bench regression gate")
	}
	ctx := context.Background()

	measure := func(run func() (any, error)) int64 {
		base := liveHeap()
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		d := heapDelta(base)
		runtime.KeepAlive(res)
		return d
	}

	materialized := measure(func() (any, error) {
		ds, err := RunCombinationContext(ctx, "2C", WithSeed(42), WithScale(ScaleSmall))
		if err != nil {
			return nil, err
		}
		// Keep the dataset referenced alongside the figures: the point of
		// this arm is the cost of holding the records until the end.
		return []any{ds, figureSet{
			probeAll:  analysis.ProbeAll(ds),
			shares:    analysis.ShareVsRTT(ds),
			pref:      analysis.Preference(ds),
			hardening: analysis.PreferenceHardening(ds),
		}}, nil
	})
	streaming := measure(func() (any, error) {
		agg, _, err := RunCombinationAggregated(ctx, "2C",
			analysis.AggConfig{MaxSamples: 1024, Seed: 42},
			WithSeed(42), WithScale(ScaleSmall))
		if err != nil {
			return nil, err
		}
		return figureSet{
			probeAll:  agg.ProbeAll(),
			shares:    agg.ShareVsRTT(),
			pref:      agg.Preference(),
			hardening: agg.PreferenceHardening(),
		}, nil
	})

	t.Logf("retained heap: streaming %.2f MiB, materialized %.2f MiB",
		float64(streaming)/(1<<20), float64(materialized)/(1<<20))
	if streaming > streamingRetainedBudget {
		t.Errorf("streaming path retains %d bytes, budget %d", streaming, int64(streamingRetainedBudget))
	}
	if streaming*2 > materialized {
		t.Errorf("streaming retained heap %d should stay well under materialized %d",
			streaming, materialized)
	}
}

// TestBenchGateShardedRun is the CI regression gate for
// BenchmarkShardedRun: splitting a run across 8 simulation lanes must
// actually buy wall-clock time on parallel hardware, and must never
// cost meaningful time anywhere. The speedup bar scales with the host
// because the shards are true parallelism — on fewer cores than
// shards the physics caps the ratio, so demanding 3x on a 1-core CI
// box would only test the scheduler. What is demanded everywhere is
// byte-identity (checked here too, cheaply) and bounded overhead.
// Gated behind RITW_BENCH_GATE=1.
func TestBenchGateShardedRun(t *testing.T) {
	if os.Getenv("RITW_BENCH_GATE") == "" {
		t.Skip("set RITW_BENCH_GATE=1 to run the bench regression gate")
	}
	ctx := context.Background()

	timed := func(shards int) (any, time.Duration) {
		start := time.Now()
		ds, err := RunCombinationContext(ctx, "2B",
			WithSeed(42), WithScale(ScaleSmall), WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		return analysis.ProbeAll(ds), time.Since(start)
	}

	seqFig, seq := timed(1)
	shardFig, sharded := timed(8)
	speedup := float64(seq) / float64(sharded)
	t.Logf("2B small: sequential %v, 8 shards %v (%.2fx, %d CPUs)",
		seq.Round(time.Millisecond), sharded.Round(time.Millisecond),
		speedup, runtime.NumCPU())

	if seqFig != shardFig {
		t.Errorf("sharded figure diverged from sequential:\n%+v\nvs\n%+v", shardFig, seqFig)
	}
	if cpus := runtime.NumCPU(); cpus >= 8 {
		// Full lanes available: the acceptance bar from the sharding
		// issue. Lane balance at full scale is ~12% max (ceiling ~8.3x),
		// so 3x leaves generous room for merge overhead.
		if speedup < 3.0 {
			t.Errorf("8 shards on %d CPUs: %.2fx speedup, want >= 3x", cpus, speedup)
		}
	} else if sharded > seq+seq*15/100 {
		// Fewer cores than lanes: speedup is physically capped, but the
		// sharded machinery (planning, per-lane heaps, canonical merge)
		// must not cost more than ~15% over the single lane.
		t.Errorf("8 shards on %d CPUs: %v vs sequential %v, overhead above 15%%",
			cpus, sharded, seq)
	}
}
