package core

import (
	"context"
	"os"
	"runtime"
	"testing"

	"ritw/internal/analysis"
)

// streamingRetainedBudget bounds the live heap the streaming figure
// pipeline may retain at ScaleSmall. The recorded baseline is ~0.5 MiB
// against ~4.8 MiB materialized (see BENCH.md); 2 MiB of headroom
// absorbs GC timing noise while still catching the failure this guards
// against — an aggregator accidentally holding on to record slices.
const streamingRetainedBudget = 2 << 20

// TestBenchGateStreamingRetainedHeap is the CI regression gate for
// BenchmarkStreamingVsMaterialized: the streaming path's retained heap
// must stay under the checked-in budget and well under the
// materialized path's, or bounded-memory batch mode has quietly
// stopped being bounded. Gated behind RITW_BENCH_GATE=1.
func TestBenchGateStreamingRetainedHeap(t *testing.T) {
	if os.Getenv("RITW_BENCH_GATE") == "" {
		t.Skip("set RITW_BENCH_GATE=1 to run the bench regression gate")
	}
	ctx := context.Background()

	measure := func(run func() (any, error)) int64 {
		base := liveHeap()
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		d := heapDelta(base)
		runtime.KeepAlive(res)
		return d
	}

	materialized := measure(func() (any, error) {
		ds, err := RunCombinationContext(ctx, "2C", WithSeed(42), WithScale(ScaleSmall))
		if err != nil {
			return nil, err
		}
		// Keep the dataset referenced alongside the figures: the point of
		// this arm is the cost of holding the records until the end.
		return []any{ds, figureSet{
			probeAll:  analysis.ProbeAll(ds),
			shares:    analysis.ShareVsRTT(ds),
			pref:      analysis.Preference(ds),
			hardening: analysis.PreferenceHardening(ds),
		}}, nil
	})
	streaming := measure(func() (any, error) {
		agg, _, err := RunCombinationAggregated(ctx, "2C",
			analysis.AggConfig{MaxSamples: 1024, Seed: 42},
			WithSeed(42), WithScale(ScaleSmall))
		if err != nil {
			return nil, err
		}
		return figureSet{
			probeAll:  agg.ProbeAll(),
			shares:    agg.ShareVsRTT(),
			pref:      agg.Preference(),
			hardening: agg.PreferenceHardening(),
		}, nil
	})

	t.Logf("retained heap: streaming %.2f MiB, materialized %.2f MiB",
		float64(streaming)/(1<<20), float64(materialized)/(1<<20))
	if streaming > streamingRetainedBudget {
		t.Errorf("streaming path retains %d bytes, budget %d", streaming, int64(streamingRetainedBudget))
	}
	if streaming*2 > materialized {
		t.Errorf("streaming retained heap %d should stay well under materialized %d",
			streaming, materialized)
	}
}
