package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"ritw/internal/analysis"
	"ritw/internal/ditl"
	"ritw/internal/measure"
)

// TestRunCombinationAggregated: streaming a run into an aggregator
// yields the same figures as materializing and running the wrappers.
func TestRunCombinationAggregated(t *testing.T) {
	ctx := context.Background()
	ds, err := RunCombinationContext(ctx, "2C", tinyOpts(31)...)
	if err != nil {
		t.Fatal(err)
	}
	agg, summary, err := RunCombinationAggregated(ctx, "2C", analysis.AggConfig{}, tinyOpts(31)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(summary.Records) != 0 || len(summary.AuthRecords) != 0 {
		t.Errorf("aggregated run materialized %d/%d records",
			len(summary.Records), len(summary.AuthRecords))
	}
	if summary.ActiveProbes != ds.ActiveProbes {
		t.Errorf("summary probes = %d, want %d", summary.ActiveProbes, ds.ActiveProbes)
	}
	if got, want := agg.ProbeAll(), analysis.ProbeAll(ds); got != want {
		t.Errorf("ProbeAll\n got %+v\nwant %+v", got, want)
	}
	if got, want := agg.PreferenceHardening(), analysis.PreferenceHardening(ds); got != want {
		t.Errorf("Hardening\n got %+v\nwant %+v", got, want)
	}
	if agg.NumRecords() != len(ds.Records) {
		t.Errorf("streamed %d records, want %d", agg.NumRecords(), len(ds.Records))
	}
}

// TestTable1WithSinks: the batch API fans each combination's stream
// into its own sink, keyed by combination ID, in stream-only mode.
func TestTable1WithSinks(t *testing.T) {
	var mu sync.Mutex
	bufs := make(map[string]*bytes.Buffer)
	sinkFor := func(key string) measure.Sink {
		mu.Lock()
		defer mu.Unlock()
		buf := &bytes.Buffer{}
		bufs[key] = buf
		return measure.NewCSVSink(buf, key)
	}
	dss, err := RunTable1Context(context.Background(),
		append(tinyOpts(11), WithSink(sinkFor), WithStreamOnly(true))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(bufs) != 7 {
		t.Fatalf("sinks created for %d keys, want 7: %v", len(bufs), keys(bufs))
	}
	for id, ds := range dss {
		if len(ds.Records) != 0 {
			t.Errorf("%s: stream-only run materialized %d records", id, len(ds.Records))
		}
		if ds.ActiveProbes == 0 {
			t.Errorf("%s: summary lost", id)
		}
		buf, ok := bufs[id]
		if !ok || buf.Len() == 0 {
			t.Errorf("%s: no spilled CSV", id)
			continue
		}
		// Spilled rows carry the run's records.
		lines := strings.Count(buf.String(), "\n")
		if lines < ds.ActiveProbes {
			t.Errorf("%s: only %d CSV lines for %d probes", id, lines, ds.ActiveProbes)
		}
	}
}

func keys(m map[string]*bytes.Buffer) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRootTraceStreamMatches: the streaming rank path reproduces the
// materialized bands exactly at the same seed.
func TestRootTraceStreamMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the root trace twice")
	}
	trace, want, err := RunRootTrace(3, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunRootTraceStream(3, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bands != want {
		t.Errorf("streamed bands\n got %+v\nwant %+v", st.Bands, want)
	}
	sTrace := st.Trace
	if sTrace.TotalQueries != trace.TotalQueries || sTrace.Recursives != trace.Recursives {
		t.Errorf("stream summary %d/%d, want %d/%d",
			sTrace.TotalQueries, sTrace.Recursives, trace.TotalQueries, trace.Recursives)
	}
	if len(sTrace.Counts) != 0 {
		t.Errorf("streaming trace kept %d count tables", len(sTrace.Counts))
	}
	// The aggregator's pivot must match the materialized trace's.
	if got := analysis.Ranks(st.Agg.PerRecursive(), len(sTrace.Observed), 250); got != want {
		t.Errorf("agg pivot bands\n got %+v\nwant %+v", got, want)
	}
}

// TestRanksFromTraceCSV: streaming a trace file reproduces the
// materialized pivot's bands.
func TestRanksFromTraceCSV(t *testing.T) {
	trace := &ditl.Trace{
		Observed: []string{"a-root", "b-root", "c-root"},
		Counts: map[string]map[string]int{
			"a-root": {"r1": 300, "r2": 100, "r3": 80},
			"b-root": {"r2": 90, "r3": 80},
			"c-root": {"r3": 90, "r4": 3},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := analysis.Ranks(trace.PerRecursive(), 3, 200)
	got, err := RanksFromTraceCSV(bytes.NewReader(buf.Bytes()), 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("bands\n got %+v\nwant %+v", got, want)
	}
	// totalServers <= 0 derives the server count from the file.
	derived, err := RanksFromTraceCSV(bytes.NewReader(buf.Bytes()), 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if derived != want {
		t.Errorf("derived-server bands\n got %+v\nwant %+v", derived, want)
	}
	if _, err := RanksFromTraceCSV(strings.NewReader(""), 0, 1); err == nil {
		t.Error("empty trace should fail")
	}
}
