package core

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ritw/internal/analysis"
)

// benchScale picks the population for the streaming benchmark from
// RITW_BENCH_SCALE (small, medium, full). The default is small so the
// CI bench smoke stays cheap; the numbers recorded in BENCH.md come
// from a full-scale run.
func benchScale(b *testing.B) Scale {
	switch s := os.Getenv("RITW_BENCH_SCALE"); s {
	case "", "small":
		return ScaleSmall
	case "medium":
		return ScaleMedium
	case "full":
		return ScaleFull
	default:
		b.Fatalf("RITW_BENCH_SCALE=%q, want small|medium|full", s)
		return 0
	}
}

// liveHeap forces a full collection and returns the live heap, so the
// deltas below count retained bytes, not allocation churn.
func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

func heapDelta(base uint64) int64 {
	d := int64(liveHeap()) - int64(base)
	if d < 0 {
		return 0
	}
	return d
}

// figureSet is what a figure pipeline actually keeps after a run: the
// computed results, not the raw records.
type figureSet struct {
	probeAll  analysis.ProbeAllResult
	shares    []analysis.SiteShare
	pref      analysis.PreferenceResult
	hardening analysis.HardeningResult
}

// BenchmarkShardedRun times the same 2B run single-lane and split
// across 8 simulation shards. The datasets are byte-identical (pinned
// by TestShardedMatchesSequential and the sharded golden suite), so
// the time ratio is the pure parallel speedup of closure sharding on
// this host. On a single-core container the ratio only reflects the
// smaller per-lane event heaps; record multi-core numbers in BENCH.md
// from real hardware.
func BenchmarkShardedRun(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var probes int
			for i := 0; i < b.N; i++ {
				ds, err := RunCombinationContext(ctx, "2B",
					WithSeed(42), WithScale(scale), WithShards(shards))
				if err != nil {
					b.Fatal(err)
				}
				probes = ds.ActiveProbes
			}
			b.ReportMetric(float64(probes), "VPs")
		})
	}
}

// BenchmarkStreamingVsMaterialized compares the peak retained heap of
// the two record paths while producing the same 2C figures: the
// materialized path holds the full dataset (every QueryRecord and
// AuthRecord) until the wrappers finish, while the streaming path
// holds only the aggregator's per-VP state. The live-MiB metric is the
// retained-heap delta with the artifacts still referenced.
func BenchmarkStreamingVsMaterialized(b *testing.B) {
	scale := benchScale(b)
	ctx := context.Background()

	b.Run("materialized", func(b *testing.B) {
		var peak int64
		for i := 0; i < b.N; i++ {
			base := liveHeap()
			ds, err := RunCombinationContext(ctx, "2C", WithSeed(42), WithScale(scale))
			if err != nil {
				b.Fatal(err)
			}
			res := figureSet{
				probeAll:  analysis.ProbeAll(ds),
				shares:    analysis.ShareVsRTT(ds),
				pref:      analysis.Preference(ds),
				hardening: analysis.PreferenceHardening(ds),
			}
			if d := heapDelta(base); d > peak {
				peak = d
			}
			runtime.KeepAlive(ds)
			runtime.KeepAlive(res)
		}
		b.ReportMetric(float64(peak)/(1<<20), "live-MiB")
	})

	b.Run("streaming", func(b *testing.B) {
		var peak int64
		for i := 0; i < b.N; i++ {
			base := liveHeap()
			agg, _, err := RunCombinationAggregated(ctx, "2C",
				analysis.AggConfig{MaxSamples: 1024, Seed: 42},
				WithSeed(42), WithScale(scale))
			if err != nil {
				b.Fatal(err)
			}
			res := figureSet{
				probeAll:  agg.ProbeAll(),
				shares:    agg.ShareVsRTT(),
				pref:      agg.Preference(),
				hardening: agg.PreferenceHardening(),
			}
			if d := heapDelta(base); d > peak {
				peak = d
			}
			runtime.KeepAlive(agg)
			runtime.KeepAlive(res)
		}
		b.ReportMetric(float64(peak)/(1<<20), "live-MiB")
	})
}
