package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"ritw/internal/measure"
	"ritw/internal/netsim"
	"ritw/internal/obs"
)

// datasetBytes serializes everything in a dataset that analysis can
// see, so determinism checks compare byte-for-byte, not just field
// spot checks.
func datasetBytes(t *testing.T, ds *measure.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	for _, ar := range ds.AuthRecords {
		fmt.Fprintf(&buf, "%s %s %s %d\n", ar.Site, ar.Src, ar.QName, ar.At)
	}
	fmt.Fprintf(&buf, "active=%d interval=%s sites=%v\n", ds.ActiveProbes, ds.Interval, ds.Sites)
	return buf.Bytes()
}

// tinyOpts keeps pool tests fast: a few hundred probes and a short
// virtual run still exercise every moving part.
func tinyOpts(seed int64) []Option {
	return []Option{WithSeed(seed), WithProbes(200), WithInterval(5 * time.Minute)}
}

// TestTable1ParallelDeterminism is the Runner's core guarantee: the
// same seed yields byte-identical datasets at parallelism 1 and N.
func TestTable1ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Table-1 batch twice")
	}
	ctx := context.Background()
	serial, err := RunTable1Context(ctx, append(tinyOpts(77), WithParallelism(1))...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunTable1Context(ctx, append(tinyOpts(77), WithParallelism(8))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 7 || len(parallel) != 7 {
		t.Fatalf("combos: serial=%d parallel=%d, want 7", len(serial), len(parallel))
	}
	for id, ds := range serial {
		got, want := datasetBytes(t, parallel[id]), datasetBytes(t, ds)
		if !bytes.Equal(got, want) {
			t.Errorf("combination %s differs between parallelism 1 and 8", id)
		}
	}
}

// TestIntervalSweepParallelDeterminism covers the Figure-6 path and
// the deep comparison including SiteAddr.
func TestIntervalSweepParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	intervals := []time.Duration{5 * time.Minute, 30 * time.Minute}
	serial, err := RunIntervalSweepContext(ctx, intervals, append(tinyOpts(5), WithParallelism(1))...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunIntervalSweepContext(ctx, intervals, append(tinyOpts(5), WithParallelism(4))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("interval %v dataset differs between parallelism 1 and 4", intervals[i])
		}
	}
}

// TestSchedulerChoiceMatchesDatasets pins the API contract of
// WithScheduler: the timing wheel must produce byte-for-byte the
// dataset the reference heap does — scheduler choice is a wall-clock
// knob, never a science knob.
func TestSchedulerChoiceMatchesDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the same combination twice")
	}
	heap, err := RunCombinationContext(context.Background(), "2B", WithSeed(9), WithScale(ScaleSmall),
		WithScheduler(netsim.SchedHeap))
	if err != nil {
		t.Fatal(err)
	}
	wheel, err := RunCombinationContext(context.Background(), "2B", WithSeed(9), WithScale(ScaleSmall),
		WithScheduler(netsim.SchedWheel))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetBytes(t, heap), datasetBytes(t, wheel)) {
		t.Error("heap and wheel schedulers disagree on the dataset")
	}
}

// TestRunCancellation: a cancelled context must abandon a long run
// promptly with context.Canceled, through every layer of the API.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch even starts
	if _, err := RunTable1Context(ctx, tinyOpts(1)...); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Table1 err = %v, want context.Canceled", err)
	}

	// Cancel mid-flight: full-size runs take seconds; cancellation must
	// return orders of magnitude faster.
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := RunTable1Context(ctx, WithSeed(3), WithScale(ScaleFull), WithParallelism(2))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mid-flight cancel err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("cancellation took %v, want prompt return", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return within 10s")
	}
}

// TestRunnerFirstErrorCancelsBatch: one failing job aborts the batch
// and surfaces its name.
func TestRunnerFirstErrorCancelsBatch(t *testing.T) {
	boom := errors.New("boom")
	var jobs []Job
	jobs = append(jobs, Job{Name: "bad", Run: func(context.Context) (*measure.Dataset, error) {
		return nil, boom
	}})
	for i := 0; i < 10; i++ {
		jobs = append(jobs, Job{Name: fmt.Sprintf("slow-%d", i), Run: func(ctx context.Context) (*measure.Dataset, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(30 * time.Second):
				return &measure.Dataset{}, nil
			}
		}})
	}
	r := &Runner{Parallelism: 4}
	start := time.Now()
	_, err := r.RunJobs(context.Background(), jobs)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("failed batch took %v, want fast abort", elapsed)
	}
}

// TestRunnerJobOrder: results come back in job order regardless of
// completion order.
func TestRunnerJobOrder(t *testing.T) {
	const n = 16
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(context.Context) (*measure.Dataset, error) {
			// Later jobs finish first, exercising the reordering.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return &measure.Dataset{ComboID: fmt.Sprintf("j%d", i)}, nil
		}}
	}
	out, err := (&Runner{Parallelism: 8}).RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ds := range out {
		if want := fmt.Sprintf("j%d", i); ds == nil || ds.ComboID != want {
			t.Errorf("slot %d = %v, want %s", i, ds, want)
		}
	}
}

// TestOptionsDefaults pins the option surface semantics.
func TestOptionsDefaults(t *testing.T) {
	o := NewRunOpts()
	if o.probes() != ScaleSmall.Probes() {
		t.Errorf("default probes = %d, want ScaleSmall's %d", o.probes(), ScaleSmall.Probes())
	}
	if o.parallelism() < 1 {
		t.Errorf("default parallelism = %d, want >= 1", o.parallelism())
	}
	o = NewRunOpts(WithScale(ScaleFull), WithProbes(123), WithParallelism(3))
	if o.probes() != 123 {
		t.Errorf("WithProbes should win over scale: got %d", o.probes())
	}
	if o.parallelism() != 3 {
		t.Errorf("parallelism = %d, want 3", o.parallelism())
	}
	cfg := NewRunOpts(WithSeed(7), WithInterval(9*time.Minute)).runConfig(measure.Combination{ID: "2B", Sites: []string{"DUB", "FRA"}}, 2, "2B")
	if cfg.Seed != 9 {
		t.Errorf("runConfig seed = %d, want base+offset = 9", cfg.Seed)
	}
	if cfg.Interval != 9*time.Minute {
		t.Errorf("runConfig interval = %v, want 9m", cfg.Interval)
	}
}

// TestReplicates: the bootstrap fan-out returns n independent datasets
// in seed order.
func TestReplicates(t *testing.T) {
	r := NewRunner()
	dss, err := r.Replicates(context.Background(), "2B", 2, tinyOpts(21)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 2 {
		t.Fatalf("replicates = %d, want 2", len(dss))
	}
	// Different seeds must actually differ; same seed must match the
	// single-run API.
	if bytes.Equal(datasetBytes(t, dss[0]), datasetBytes(t, dss[1])) {
		t.Error("replicates with different seeds are identical")
	}
	single, err := RunCombinationContext(context.Background(), "2B", tinyOpts(21)...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetBytes(t, dss[0]), datasetBytes(t, single)) {
		t.Error("replicate 0 differs from the single-run API at the same seed")
	}
}

// TestRunnerMetricsAndProgress asserts the batch observability wiring:
// job counters, the batch wall-clock gauge, and serialized progress
// callbacks with a monotonically increasing done count.
func TestRunnerMetricsAndProgress(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var events []BatchProgress
	r := &Runner{
		Parallelism: 4,
		Metrics:     reg,
		Progress: func(p BatchProgress) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		},
	}
	const n = 6
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(context.Context) (*measure.Dataset, error) {
			if i == 3 {
				return nil, errors.New("boom")
			}
			return &measure.Dataset{ComboID: fmt.Sprintf("j%d", i)}, nil
		}}
	}
	_, err := r.RunJobs(context.Background(), jobs)
	if err == nil {
		t.Fatal("expected the failing job's error")
	}

	s := reg.Snapshot()
	if got := s.Counter("runner_jobs_started_total"); got < 1 || got > n {
		t.Errorf("started = %d, want 1..%d", got, n)
	}
	finished := s.Counter("runner_jobs_finished_total")
	failed := s.Counter("runner_jobs_failed_total")
	if failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
	if finished+failed != int64(len(events)) {
		t.Errorf("finished=%d failed=%d but %d progress events", finished, failed, len(events))
	}
	if _, ok := s.Gauges[`runner_batch_wallclock_ms{batch="jobs"}`]; !ok {
		t.Error("batch wall-clock gauge missing")
	}

	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	sawErr := false
	for i, p := range events {
		if p.Batch != "jobs" || p.Total != n {
			t.Fatalf("event %d = %+v", i, p)
		}
		if p.Done != i+1 {
			t.Errorf("event %d done = %d, want %d (serialized, monotonic)", i, p.Done, i+1)
		}
		if p.Err != nil {
			sawErr = true
			if p.Job != "j3" || p.Failed < 1 {
				t.Errorf("error event = %+v", p)
			}
		}
	}
	if !sawErr {
		t.Error("failing job never reported through progress")
	}
}
