package core

import (
	"fmt"
	"math"
	"sort"

	"ritw/internal/geo"
)

// Authoritative is one NS record's service in a deployment plan: one
// site means unicast, several mean an IP anycast service.
type Authoritative struct {
	Name  string
	Sites []string
}

// IsAnycast reports whether the authoritative is an anycast service.
func (a Authoritative) IsAnycast() bool { return len(a.Sites) > 1 }

// Deployment is a candidate authoritative DNS architecture for a zone.
type Deployment struct {
	Name           string
	Authoritatives []Authoritative
}

// NLCurrent models the .nl architecture the paper describes in §7:
// five unicast authoritatives in the Netherlands and three worldwide
// anycast services.
func NLCurrent() Deployment {
	return Deployment{
		Name: "nl-current (5 unicast NL + 3 anycast)",
		Authoritatives: []Authoritative{
			{Name: "ns1", Sites: []string{"AMS"}},
			{Name: "ns2", Sites: []string{"AMS"}},
			{Name: "ns3", Sites: []string{"AMS"}},
			{Name: "ns4", Sites: []string{"AMS"}},
			{Name: "ns5", Sites: []string{"AMS"}},
			{Name: "any1", Sites: []string{"AMS", "EWR", "HKG", "GRU", "SYD", "LHR", "FRA"}},
			{Name: "any2", Sites: []string{"AMS", "SFO", "NRT", "JNB", "MIA", "ARN"}},
			{Name: "any3", Sites: []string{"AMS", "ORD", "SIN", "CDG", "SCL"}},
		},
	}
}

// NLAllAnycast is the paper's recommendation applied to .nl: every
// authoritative an anycast service.
func NLAllAnycast() Deployment {
	d := Deployment{Name: "nl-all-anycast (8 anycast)"}
	footprints := [][]string{
		{"AMS", "EWR", "HKG", "GRU", "SYD", "LHR", "FRA"},
		{"AMS", "SFO", "NRT", "JNB", "MIA", "ARN"},
		{"AMS", "ORD", "SIN", "CDG", "SCL"},
		{"AMS", "IAD", "ICN", "EZE", "PER"},
		{"AMS", "LAX", "BOM", "NBO", "WAW"},
		{"AMS", "SEA", "BKK", "BOG", "MAD"},
		{"AMS", "DFW", "DXB", "AKL", "MXP"},
		{"AMS", "YYZ", "TLV", "SCL", "ARN"},
	}
	for i, sites := range footprints {
		d.Authoritatives = append(d.Authoritatives, Authoritative{
			Name:  fmt.Sprintf("any%d", i+1),
			Sites: sites,
		})
	}
	return d
}

// PlannerConfig parameterizes the latency evaluation.
type PlannerConfig struct {
	// LatencyAwareShare is the fraction of recursives that send their
	// queries to the lowest-latency authoritative; the rest spread
	// evenly. The paper's §4 finding is "about half".
	LatencyAwareShare float64
	// Model is the distance→RTT path model.
	Model geo.PathModel
}

// DefaultPlannerConfig applies the paper's headline finding.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		LatencyAwareShare: 0.5,
		Model:             geo.DefaultPathModel(),
	}
}

// AuthLatency is one authoritative's latency as the worldwide client
// population experiences it.
type AuthLatency struct {
	Name string
	// Anycast reports whether this authoritative is anycast.
	Anycast bool
	// MeanRTT is the client-weighted mean RTT in milliseconds (each
	// client reaches the nearest site of the service).
	MeanRTT float64
	// WorstRegionRTT is the worst per-region RTT.
	WorstRegionRTT float64
}

// PlanReport evaluates a deployment against the worldwide client
// population.
type PlanReport struct {
	Deployment string
	// PerAuth is sorted from fastest to slowest MeanRTT.
	PerAuth []AuthLatency
	// MeanLatency is the expected query latency under the configured
	// recursive mixture: latency-aware recursives hit the fastest
	// authoritative, the rest spread across all of them.
	MeanLatency float64
	// WorstAuthMean is the mean RTT of the slowest authoritative —
	// the paper's bound: "worst-case latency will be limited by the
	// least anycast authoritative".
	WorstAuthMean float64
	WorstAuthName string
	// SpreadPenalty is the extra latency (vs. all queries going to the
	// fastest NS) paid because recursives keep querying every NS.
	SpreadPenalty float64
}

// String renders the report for harness output.
func (r PlanReport) String() string {
	s := fmt.Sprintf("%s: mean=%.1fms worst-auth=%s (%.1fms) spread-penalty=%.1fms\n",
		r.Deployment, r.MeanLatency, r.WorstAuthName, r.WorstAuthMean, r.SpreadPenalty)
	for _, a := range r.PerAuth {
		kind := "unicast"
		if a.Anycast {
			kind = "anycast"
		}
		s += fmt.Sprintf("  %-6s %-7s mean=%.1fms worst-region=%.1fms\n",
			a.Name, kind, a.MeanRTT, a.WorstRegionRTT)
	}
	return s
}

// Evaluate computes the latency profile of a deployment analytically:
// every client region reaches each authoritative at the base RTT of
// its nearest site, and the recursive mixture determines how queries
// spread across authoritatives. It returns an error on an empty
// deployment or unknown site codes.
func Evaluate(d Deployment, cfg PlannerConfig) (PlanReport, error) {
	if len(d.Authoritatives) == 0 {
		return PlanReport{}, fmt.Errorf("core: deployment %q has no authoritatives", d.Name)
	}
	if cfg.Model.FiberKmPerMs == 0 {
		cfg.Model = geo.DefaultPathModel()
	}
	if cfg.LatencyAwareShare < 0 || cfg.LatencyAwareShare > 1 {
		return PlanReport{}, fmt.Errorf("core: LatencyAwareShare %v out of [0,1]", cfg.LatencyAwareShare)
	}
	regions, weights := geo.ProbeRegions()
	var weightTotal float64
	for _, w := range weights {
		weightTotal += w
	}

	// rtt[i][j]: region i to authoritative j (nearest site).
	rtt := make([][]float64, len(regions))
	for i, region := range regions {
		rtt[i] = make([]float64, len(d.Authoritatives))
		for j, auth := range d.Authoritatives {
			if len(auth.Sites) == 0 {
				return PlanReport{}, fmt.Errorf("core: authoritative %q has no sites", auth.Name)
			}
			best := math.Inf(1)
			for _, code := range auth.Sites {
				site, err := geo.SiteByCode(code)
				if err != nil {
					return PlanReport{}, fmt.Errorf("core: authoritative %q: %w", auth.Name, err)
				}
				if r := cfg.Model.BaseRTTMs(region.Coord.DistanceKm(site.Coord), cfg.Model.StretchMean); r < best {
					best = r
				}
			}
			rtt[i][j] = best
		}
	}

	report := PlanReport{Deployment: d.Name}
	for j, auth := range d.Authoritatives {
		al := AuthLatency{Name: auth.Name, Anycast: auth.IsAnycast()}
		var sum float64
		for i := range regions {
			sum += weights[i] * rtt[i][j]
			if rtt[i][j] > al.WorstRegionRTT {
				al.WorstRegionRTT = rtt[i][j]
			}
		}
		al.MeanRTT = sum / weightTotal
		report.PerAuth = append(report.PerAuth, al)
	}
	sort.Slice(report.PerAuth, func(a, b int) bool {
		return report.PerAuth[a].MeanRTT < report.PerAuth[b].MeanRTT
	})
	worst := report.PerAuth[len(report.PerAuth)-1]
	report.WorstAuthMean = worst.MeanRTT
	report.WorstAuthName = worst.Name

	var mean, bestOnly float64
	for i := range regions {
		best := math.Inf(1)
		var avg float64
		for j := range d.Authoritatives {
			if rtt[i][j] < best {
				best = rtt[i][j]
			}
			avg += rtt[i][j]
		}
		avg /= float64(len(d.Authoritatives))
		regionMean := cfg.LatencyAwareShare*best + (1-cfg.LatencyAwareShare)*avg
		mean += weights[i] * regionMean
		bestOnly += weights[i] * best
	}
	report.MeanLatency = mean / weightTotal
	report.SpreadPenalty = report.MeanLatency - bestOnly/weightTotal
	return report, nil
}

// QueriesFromRegionShare estimates, for one authoritative of a
// deployment, the share of its incoming queries that originate from
// client regions on the given continent — the §7 case-study number
// (23% of the queries at .nl's unicast NSes come from the US). The
// recursive mixture is the same as in Evaluate: latency-aware
// recursives only show up here when this authoritative is their
// fastest.
func QueriesFromRegionShare(d Deployment, authName string, cont geo.Continent, cfg PlannerConfig) (float64, error) {
	if cfg.Model.FiberKmPerMs == 0 {
		cfg.Model = geo.DefaultPathModel()
	}
	idx := -1
	for j, a := range d.Authoritatives {
		if a.Name == authName {
			idx = j
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("core: unknown authoritative %q", authName)
	}
	regions, weights := geo.ProbeRegions()
	var total, fromCont float64
	for i, region := range regions {
		// Queries this region sends to auth idx.
		best := math.Inf(1)
		bestJ := -1
		var mine float64
		for j, auth := range d.Authoritatives {
			r := math.Inf(1)
			for _, code := range auth.Sites {
				site, err := geo.SiteByCode(code)
				if err != nil {
					return 0, err
				}
				if v := cfg.Model.BaseRTTMs(region.Coord.DistanceKm(site.Coord), cfg.Model.StretchMean); v < r {
					r = v
				}
			}
			if r < best {
				best, bestJ = r, j
			}
			if j == idx {
				mine = r
			}
		}
		_ = mine
		share := (1 - cfg.LatencyAwareShare) / float64(len(d.Authoritatives))
		if bestJ == idx {
			share += cfg.LatencyAwareShare
		}
		q := weights[i] * share
		total += q
		if region.Continent == cont {
			fromCont += q
		}
	}
	if total == 0 {
		return 0, nil
	}
	return fromCont / total, nil
}
