package core

import (
	"strings"
	"testing"

	"ritw/internal/geo"
)

func TestEvaluateNLDeployments(t *testing.T) {
	cfg := DefaultPlannerConfig()
	current, err := Evaluate(NLCurrent(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	allAny, err := Evaluate(NLAllAnycast(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's recommendation: making every authoritative anycast
	// lowers both the mean and the worst-authoritative latency.
	if allAny.MeanLatency >= current.MeanLatency {
		t.Errorf("all-anycast mean %.1f should beat mixed %.1f",
			allAny.MeanLatency, current.MeanLatency)
	}
	if allAny.WorstAuthMean >= current.WorstAuthMean {
		t.Errorf("all-anycast worst-auth %.1f should beat mixed %.1f",
			allAny.WorstAuthMean, current.WorstAuthMean)
	}
	// In the mixed deployment, the slowest authoritative is one of the
	// unicast ones — the "least anycast authoritative" bound.
	worstIsUnicast := false
	for _, a := range current.PerAuth {
		if a.Name == current.WorstAuthName && !a.Anycast {
			worstIsUnicast = true
		}
	}
	if !worstIsUnicast {
		t.Errorf("worst authoritative %s should be unicast: %+v",
			current.WorstAuthName, current.PerAuth)
	}
	// The spread penalty exists because recursives keep querying all
	// NSes; it must shrink when every NS is strong.
	if current.SpreadPenalty <= 0 {
		t.Errorf("mixed deployment should pay a spread penalty, got %.2f", current.SpreadPenalty)
	}
	if allAny.SpreadPenalty >= current.SpreadPenalty {
		t.Errorf("all-anycast spread penalty %.1f should be below mixed %.1f",
			allAny.SpreadPenalty, current.SpreadPenalty)
	}
}

func TestEvaluatePerAuthSorted(t *testing.T) {
	rep, err := Evaluate(NLCurrent(), DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerAuth) != 8 {
		t.Fatalf("authoritatives = %d", len(rep.PerAuth))
	}
	for i := 1; i < len(rep.PerAuth); i++ {
		if rep.PerAuth[i].MeanRTT < rep.PerAuth[i-1].MeanRTT {
			t.Fatal("PerAuth not sorted by mean RTT")
		}
	}
	// Anycast services must be faster than the unicast NL-only ones.
	if !rep.PerAuth[0].Anycast {
		t.Errorf("fastest authoritative should be anycast: %+v", rep.PerAuth[0])
	}
	if s := rep.String(); !strings.Contains(s, "worst-auth") || !strings.Contains(s, "unicast") {
		t.Errorf("report rendering: %q", s)
	}
}

func TestEvaluateLatencyAwareShareEffect(t *testing.T) {
	d := NLCurrent()
	none, err := Evaluate(d, PlannerConfig{LatencyAwareShare: 0})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Evaluate(d, PlannerConfig{LatencyAwareShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	if all.MeanLatency >= none.MeanLatency {
		t.Errorf("fully latency-aware population should see lower mean: %v vs %v",
			all.MeanLatency, none.MeanLatency)
	}
	if all.SpreadPenalty != 0 {
		t.Errorf("no spread penalty when everyone picks the fastest: %v", all.SpreadPenalty)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(Deployment{}, DefaultPlannerConfig()); err == nil {
		t.Error("empty deployment should fail")
	}
	bad := Deployment{Name: "bad", Authoritatives: []Authoritative{{Name: "x", Sites: []string{"NOPE"}}}}
	if _, err := Evaluate(bad, DefaultPlannerConfig()); err == nil {
		t.Error("unknown site should fail")
	}
	empty := Deployment{Name: "e", Authoritatives: []Authoritative{{Name: "x"}}}
	if _, err := Evaluate(empty, DefaultPlannerConfig()); err == nil {
		t.Error("siteless authoritative should fail")
	}
	cfg := DefaultPlannerConfig()
	cfg.LatencyAwareShare = 1.5
	if _, err := Evaluate(NLCurrent(), cfg); err == nil {
		t.Error("out-of-range share should fail")
	}
}

func TestQueriesFromRegionShareCaseStudy(t *testing.T) {
	// §7: a noticeable share of the queries arriving at .nl's unicast
	// Dutch NSes comes from North America (the paper reports 23% from
	// the US), who would be served faster by anycast sites.
	cfg := DefaultPlannerConfig()
	share, err := QueriesFromRegionShare(NLCurrent(), "ns1", geo.NorthAmerica, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.03 || share > 0.5 {
		t.Errorf("NA share at unicast ns1 = %.3f, want a noticeable minority", share)
	}
	// European queries must dominate a Dutch unicast NS.
	euShare, err := QueriesFromRegionShare(NLCurrent(), "ns1", geo.Europe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if euShare <= share {
		t.Errorf("EU share %.3f should exceed NA share %.3f at a Dutch NS", euShare, share)
	}
	if _, err := QueriesFromRegionShare(NLCurrent(), "nope", geo.Europe, cfg); err == nil {
		t.Error("unknown authoritative should fail")
	}
}

func TestAuthoritativeIsAnycast(t *testing.T) {
	if (Authoritative{Sites: []string{"AMS"}}).IsAnycast() {
		t.Error("single site is unicast")
	}
	if !(Authoritative{Sites: []string{"AMS", "EWR"}}).IsAnycast() {
		t.Error("two sites is anycast")
	}
}
