package geo

import "fmt"

// datacenters is the registry of locations referenced by experiments:
// the seven AWS regions of the paper's Table 1 plus a worldwide pool
// used to model anycast footprints (root letters, public DNS, .nl).
var datacenters = map[string]Site{
	// The paper's seven deployment sites (Table 1).
	"FRA": {"FRA", "Frankfurt, DE", Coord{50.04, 8.56}, Europe},
	"DUB": {"DUB", "Dublin, IE", Coord{53.43, -6.25}, Europe},
	"IAD": {"IAD", "Washington DC, US", Coord{38.95, -77.45}, NorthAmerica},
	"SFO": {"SFO", "San Francisco, US", Coord{37.62, -122.38}, NorthAmerica},
	"GRU": {"GRU", "São Paulo, BR", Coord{-23.43, -46.47}, SouthAmerica},
	"NRT": {"NRT", "Tokyo, JP", Coord{35.77, 140.39}, Asia},
	"SYD": {"SYD", "Sydney, AU", Coord{-33.95, 151.18}, Oceania},

	// Additional pool for anycast footprints and production models.
	"AMS": {"AMS", "Amsterdam, NL", Coord{52.31, 4.76}, Europe},
	"LHR": {"LHR", "London, GB", Coord{51.47, -0.45}, Europe},
	"CDG": {"CDG", "Paris, FR", Coord{49.01, 2.55}, Europe},
	"MAD": {"MAD", "Madrid, ES", Coord{40.47, -3.56}, Europe},
	"ARN": {"ARN", "Stockholm, SE", Coord{59.65, 17.92}, Europe},
	"WAW": {"WAW", "Warsaw, PL", Coord{52.17, 20.97}, Europe},
	"SVO": {"SVO", "Moscow, RU", Coord{55.97, 37.41}, Europe},
	"MXP": {"MXP", "Milan, IT", Coord{45.63, 8.72}, Europe},
	"VIE": {"VIE", "Vienna, AT", Coord{48.11, 16.57}, Europe},

	"EWR": {"EWR", "Newark, US", Coord{40.69, -74.17}, NorthAmerica},
	"ORD": {"ORD", "Chicago, US", Coord{41.97, -87.91}, NorthAmerica},
	"LAX": {"LAX", "Los Angeles, US", Coord{33.94, -118.41}, NorthAmerica},
	"MIA": {"MIA", "Miami, US", Coord{25.79, -80.29}, NorthAmerica},
	"DFW": {"DFW", "Dallas, US", Coord{32.90, -97.04}, NorthAmerica},
	"SEA": {"SEA", "Seattle, US", Coord{47.45, -122.31}, NorthAmerica},
	"ATL": {"ATL", "Atlanta, US", Coord{33.64, -84.43}, NorthAmerica},
	"YYZ": {"YYZ", "Toronto, CA", Coord{43.68, -79.63}, NorthAmerica},
	"MEX": {"MEX", "Mexico City, MX", Coord{19.44, -99.07}, NorthAmerica},

	"SCL": {"SCL", "Santiago, CL", Coord{-33.39, -70.79}, SouthAmerica},
	"EZE": {"EZE", "Buenos Aires, AR", Coord{-34.82, -58.54}, SouthAmerica},
	"BOG": {"BOG", "Bogotá, CO", Coord{4.70, -74.15}, SouthAmerica},
	"LIM": {"LIM", "Lima, PE", Coord{-12.02, -77.11}, SouthAmerica},

	"JNB": {"JNB", "Johannesburg, ZA", Coord{-26.14, 28.25}, Africa},
	"NBO": {"NBO", "Nairobi, KE", Coord{-1.32, 36.93}, Africa},
	"CAI": {"CAI", "Cairo, EG", Coord{30.12, 31.41}, Africa},
	"LOS": {"LOS", "Lagos, NG", Coord{6.58, 3.32}, Africa},
	"TUN": {"TUN", "Tunis, TN", Coord{36.85, 10.23}, Africa},

	"DXB": {"DXB", "Dubai, AE", Coord{25.25, 55.36}, Asia},
	"BOM": {"BOM", "Mumbai, IN", Coord{19.09, 72.87}, Asia},
	"SIN": {"SIN", "Singapore, SG", Coord{1.36, 103.99}, Asia},
	"HKG": {"HKG", "Hong Kong, HK", Coord{22.31, 113.91}, Asia},
	"ICN": {"ICN", "Seoul, KR", Coord{37.47, 126.45}, Asia},
	"PEK": {"PEK", "Beijing, CN", Coord{40.08, 116.58}, Asia},
	"TLV": {"TLV", "Tel Aviv, IL", Coord{32.01, 34.89}, Asia},
	"BKK": {"BKK", "Bangkok, TH", Coord{13.69, 100.75}, Asia},

	"AKL": {"AKL", "Auckland, NZ", Coord{-37.01, 174.79}, Oceania},
	"MEL": {"MEL", "Melbourne, AU", Coord{-37.67, 144.84}, Oceania},
	"PER": {"PER", "Perth, AU", Coord{-31.94, 115.97}, Oceania},
}

// SiteByCode returns the registered site for an airport-style code.
func SiteByCode(code string) (Site, error) {
	s, ok := datacenters[code]
	if !ok {
		return Site{}, fmt.Errorf("geo: unknown site code %q", code)
	}
	return s, nil
}

// MustSite is SiteByCode for static configuration; it panics on an
// unknown code.
func MustSite(code string) Site {
	s, err := SiteByCode(code)
	if err != nil {
		panic(err)
	}
	return s
}

// AllSiteCodes returns every registered site code (order unspecified).
func AllSiteCodes() []string {
	codes := make([]string, 0, len(datacenters))
	for c := range datacenters {
		codes = append(codes, c)
	}
	return codes
}

// probeRegion is a population center that hosts vantage points. Weight
// approximates RIPE Atlas probe density, which is strongly skewed
// toward Europe (the paper notes "far more in Europe than elsewhere").
type probeRegion struct {
	Site   Site
	Weight float64
}

// probeRegions places vantage points around registered sites with an
// Atlas-like skew. Weights are relative probe counts.
var probeRegions = []probeRegion{
	// Europe: ~64% of probes.
	{MustSite("FRA"), 14}, {MustSite("AMS"), 10}, {MustSite("LHR"), 9},
	{MustSite("CDG"), 8}, {MustSite("MAD"), 4}, {MustSite("ARN"), 5},
	{MustSite("WAW"), 4}, {MustSite("SVO"), 4}, {MustSite("MXP"), 3},
	{MustSite("VIE"), 3},
	// North America: ~12%.
	{MustSite("EWR"), 3.5}, {MustSite("ORD"), 2}, {MustSite("LAX"), 2},
	{MustSite("SEA"), 1.5}, {MustSite("DFW"), 1.5}, {MustSite("YYZ"), 1.5},
	// Asia: ~7%, East-Asia heavy like the Atlas deployment.
	{MustSite("NRT"), 2.0}, {MustSite("SIN"), 1.0}, {MustSite("BOM"), 0.6},
	{MustSite("HKG"), 1.0}, {MustSite("ICN"), 0.9}, {MustSite("TLV"), 0.4},
	{MustSite("DXB"), 0.3}, {MustSite("BKK"), 0.5},
	// Oceania: ~2.5%.
	{MustSite("SYD"), 1.2}, {MustSite("MEL"), 0.7}, {MustSite("AKL"), 0.4},
	{MustSite("PER"), 0.3},
	// South America: ~1.3%.
	{MustSite("GRU"), 0.6}, {MustSite("EZE"), 0.3}, {MustSite("SCL"), 0.2},
	{MustSite("BOG"), 0.2},
	// Africa: ~2.2%.
	{MustSite("JNB"), 1.0}, {MustSite("NBO"), 0.4}, {MustSite("CAI"), 0.4},
	{MustSite("LOS"), 0.2}, {MustSite("TUN"), 0.2},
}

// ProbeRegions exposes the vantage-point placement model: sites and
// their relative probe-count weights.
func ProbeRegions() ([]Site, []float64) {
	sites := make([]Site, len(probeRegions))
	weights := make([]float64, len(probeRegions))
	for i, r := range probeRegions {
		sites[i] = r.Site
		weights[i] = r.Weight
	}
	return sites, weights
}
