// Package geo models the geographic substrate of the measurement: the
// coordinates of datacenters and vantage-point regions, great-circle
// distances, the continent taxonomy used to group vantage points, and
// the distance→RTT path model.
//
// The paper's measurements ride on the real Internet; we substitute a
// latency fabric whose *relative* RTT structure matches it: round-trip
// time grows with great-circle distance at fiber propagation speed,
// inflated by a per-path "stretch" factor (real routes are not
// great-circle) plus fixed overheads. See DESIGN.md §2.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// EarthRadiusKm is the mean Earth radius used for great-circle math.
const EarthRadiusKm = 6371.0

// Coord is a geographic coordinate in decimal degrees.
type Coord struct {
	Lat float64 // latitude, positive north
	Lon float64 // longitude, positive east
}

// DistanceKm returns the great-circle distance to o in kilometers,
// computed with the haversine formula.
func (c Coord) DistanceKm(o Coord) float64 {
	lat1 := c.Lat * math.Pi / 180
	lat2 := o.Lat * math.Pi / 180
	dLat := (o.Lat - c.Lat) * math.Pi / 180
	dLon := (o.Lon - c.Lon) * math.Pi / 180
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(a))
}

// Continent identifies the continental group of a vantage point or
// site, matching the paper's Table 2 grouping.
type Continent uint8

// Continents in the paper's order (Table 2).
const (
	Africa Continent = iota
	Asia
	Europe
	NorthAmerica
	Oceania
	SouthAmerica
	numContinents
)

// Continents lists all continents in Table 2 order.
func Continents() []Continent {
	return []Continent{Africa, Asia, Europe, NorthAmerica, Oceania, SouthAmerica}
}

// String returns the paper's two-letter continent code.
func (c Continent) String() string {
	switch c {
	case Africa:
		return "AF"
	case Asia:
		return "AS"
	case Europe:
		return "EU"
	case NorthAmerica:
		return "NA"
	case Oceania:
		return "OC"
	case SouthAmerica:
		return "SA"
	default:
		return fmt.Sprintf("Continent(%d)", uint8(c))
	}
}

// ParseContinent parses a two-letter continent code.
func ParseContinent(s string) (Continent, error) {
	for _, c := range Continents() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("geo: unknown continent %q", s)
}

// Site is a physical location that can host a datacenter, an anycast
// instance, or a population of vantage points.
type Site struct {
	Code      string // IATA-style code, e.g. "FRA"
	Name      string // human-readable, e.g. "Frankfurt, DE"
	Coord     Coord
	Continent Continent
}

// PathModel converts great-circle distance into round-trip time. The
// default values are calibrated so that intra-Europe RTTs land near
// the paper's ~40 ms and Europe–Sydney near ~355 ms (Table 2).
type PathModel struct {
	// FiberKmPerMs is one-way signal speed in fiber (~200 km/ms,
	// i.e. 2/3 of c).
	FiberKmPerMs float64
	// StretchMean is the mean multiplicative route inflation over
	// great-circle distance. Real routes detour through exchanges.
	StretchMean float64
	// StretchSigma is the lognormal sigma of per-path stretch.
	StretchSigma float64
	// OverheadMs is fixed per-query overhead (serialization, server
	// processing, metro last-hop) added to every RTT.
	OverheadMs float64
	// JitterBaseMs and JitterSlope define per-packet queueing jitter:
	// sigma = JitterBaseMs + JitterSlope·baseRTT. The slope makes long
	// paths noisier.
	JitterBaseMs float64
	JitterSlope  float64
	// FlatStretchSigma disables the distance scaling of the stretch
	// variance (see SampleStretch). With flat variance, the relative
	// ordering of two faraway authoritatives becomes as predictable as
	// a nearby pair's, and the paper's Figure-5 fade disappears —
	// BenchmarkAblationPathVariance quantifies this.
	FlatStretchSigma bool
}

// DefaultPathModel returns the calibrated path model used by all
// experiments (see EXPERIMENTS.md for the calibration notes).
func DefaultPathModel() PathModel {
	return PathModel{
		FiberKmPerMs: 200,
		StretchMean:  1.9,
		StretchSigma: 0.18,
		OverheadMs:   6,
		JitterBaseMs: 1.5,
		JitterSlope:  0.08,
	}
}

// BaseRTTMs returns the deterministic RTT in milliseconds for a path of
// the given great-circle distance and stretch factor (no jitter).
func (m PathModel) BaseRTTMs(distKm, stretch float64) float64 {
	oneWay := distKm * stretch / m.FiberKmPerMs
	return 2*oneWay + m.OverheadMs
}

// SampleStretch draws a per-path stretch factor for a path of the
// given great-circle distance. Stretch is sampled once per (endpoint,
// endpoint) pair and then pinned for the lifetime of the experiment:
// routing is stable at the hour scale the paper measures.
//
// The variance grows with distance: short continental routes track
// geography closely, while intercontinental routes detour through a
// handful of cables and exchanges, making their relative length far
// less predictable. This is what lets nearby vantage points develop
// systematic latency preferences while faraway ones see effectively
// randomized orderings — the paper's Figure 5 effect.
func (m PathModel) SampleStretch(rng *rand.Rand, distKm float64) float64 {
	scale := 0.5 + 1.1*math.Min(1, distKm/8000)
	if m.FlatStretchSigma {
		scale = 1
	}
	sigma := m.StretchSigma * scale
	s := m.StretchMean * math.Exp(rng.NormFloat64()*sigma-sigma*sigma/2)
	if s < 1.05 {
		s = 1.05
	}
	return s
}

// JitterMs draws a one-sample queueing jitter for a path whose base RTT
// is baseMs. Jitter scales with path length: long intercontinental
// paths cross more queues, so their RTT spread is wider. This scaling
// is what makes latency preferences fade for faraway vantage points
// (the paper's Figure 5 effect) — see the Ablation benches.
func (m PathModel) JitterMs(rng *rand.Rand, baseMs float64) float64 {
	sigma := m.JitterBaseMs + m.JitterSlope*baseMs
	if sigma <= 0 {
		return 0
	}
	return math.Abs(rng.NormFloat64()) * sigma
}

// LastMileMs draws a per-vantage-point access-network latency. Home
// DSL/cable adds tens of milliseconds; fiber and datacenter probes add
// almost none. Sampled once per probe.
func LastMileMs(rng *rand.Rand) float64 {
	// Lognormal, median ~8 ms, long tail to ~60 ms.
	v := 8 * math.Exp(rng.NormFloat64()*0.7)
	if v > 120 {
		v = 120
	}
	return v
}
