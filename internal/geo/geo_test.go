package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b       string
		wantKm     float64
		toleranceK float64
	}{
		{"FRA", "DUB", 1090, 100},
		{"FRA", "SYD", 16500, 400},
		{"FRA", "NRT", 9350, 300},
		{"GRU", "NRT", 18550, 500},
		{"IAD", "SFO", 3900, 200},
		{"DUB", "IAD", 5450, 250},
	}
	for _, c := range cases {
		a, b := MustSite(c.a), MustSite(c.b)
		got := a.Coord.DistanceKm(b.Coord)
		if math.Abs(got-c.wantKm) > c.toleranceK {
			t.Errorf("distance %s-%s = %.0f km, want %.0f ± %.0f", c.a, c.b, got, c.wantKm, c.toleranceK)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry, identity, and bounded by half Earth circumference.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d1, d2 := a.DistanceKm(b), b.DistanceKm(a)
		if math.Abs(d1-d2) > 1e-6 {
			return false
		}
		if a.DistanceKm(a) > 1e-6 {
			return false
		}
		return d1 >= 0 && d1 <= math.Pi*EarthRadiusKm+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 90)
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 180)
}

func TestContinentString(t *testing.T) {
	want := map[Continent]string{
		Africa: "AF", Asia: "AS", Europe: "EU",
		NorthAmerica: "NA", Oceania: "OC", SouthAmerica: "SA",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(c), c.String(), s)
		}
		parsed, err := ParseContinent(s)
		if err != nil || parsed != c {
			t.Errorf("ParseContinent(%q) = %v, %v", s, parsed, err)
		}
	}
	if _, err := ParseContinent("XX"); err == nil {
		t.Error("ParseContinent(XX) should fail")
	}
	if s := Continent(99).String(); s == "" {
		t.Error("unknown continent should stringify non-empty")
	}
}

func TestContinentsOrder(t *testing.T) {
	cs := Continents()
	if len(cs) != 6 {
		t.Fatalf("got %d continents, want 6", len(cs))
	}
	// Table 2 order: AF AS EU NA OC SA.
	want := []string{"AF", "AS", "EU", "NA", "OC", "SA"}
	for i, c := range cs {
		if c.String() != want[i] {
			t.Errorf("Continents()[%d] = %s, want %s", i, c, want[i])
		}
	}
}

func TestSiteRegistry(t *testing.T) {
	for _, code := range []string{"FRA", "DUB", "IAD", "SFO", "GRU", "NRT", "SYD"} {
		s, err := SiteByCode(code)
		if err != nil {
			t.Fatalf("paper site %s missing: %v", code, err)
		}
		if s.Code != code {
			t.Errorf("site %s has code %s", code, s.Code)
		}
	}
	if _, err := SiteByCode("ZZZ"); err == nil {
		t.Error("SiteByCode(ZZZ) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSite(ZZZ) should panic")
		}
	}()
	MustSite("ZZZ")
}

func TestSiteContinents(t *testing.T) {
	cases := map[string]Continent{
		"FRA": Europe, "DUB": Europe, "IAD": NorthAmerica, "SFO": NorthAmerica,
		"GRU": SouthAmerica, "NRT": Asia, "SYD": Oceania, "JNB": Africa,
	}
	for code, cont := range cases {
		if got := MustSite(code).Continent; got != cont {
			t.Errorf("%s continent = %v, want %v", code, got, cont)
		}
	}
}

func TestAllSiteCodes(t *testing.T) {
	codes := AllSiteCodes()
	if len(codes) < 30 {
		t.Errorf("expected a worldwide pool, got %d sites", len(codes))
	}
	seen := map[string]bool{}
	for _, c := range codes {
		if seen[c] {
			t.Errorf("duplicate code %s", c)
		}
		seen[c] = true
		if _, err := SiteByCode(c); err != nil {
			t.Errorf("listed code %s not resolvable", c)
		}
	}
}

func TestProbeRegionsEuropeSkew(t *testing.T) {
	sites, weights := ProbeRegions()
	if len(sites) != len(weights) {
		t.Fatal("sites/weights length mismatch")
	}
	byCont := map[Continent]float64{}
	var total float64
	for i, s := range sites {
		byCont[s.Continent] += weights[i]
		total += weights[i]
	}
	euShare := byCont[Europe] / total
	if euShare < 0.5 || euShare > 0.75 {
		t.Errorf("EU probe share = %.2f, want the paper's heavy-EU skew (0.5–0.75)", euShare)
	}
	for _, c := range Continents() {
		if byCont[c] == 0 {
			t.Errorf("continent %v has no probe regions", c)
		}
	}
}

func TestPathModelCalibration(t *testing.T) {
	m := DefaultPathModel()
	fra, syd := MustSite("FRA"), MustSite("SYD")
	dub := MustSite("DUB")

	// Intra-Europe: a 500 km path should land in the tens of ms.
	local := m.BaseRTTMs(500, m.StretchMean)
	if local < 8 || local > 40 {
		t.Errorf("500 km base RTT = %.1f ms, want 8–40", local)
	}
	// Europe–Sydney should land in the paper's ~300–400 ms band.
	far := m.BaseRTTMs(fra.Coord.DistanceKm(syd.Coord), m.StretchMean)
	if far < 280 || far > 420 {
		t.Errorf("FRA-SYD base RTT = %.1f ms, want 280–420", far)
	}
	// FRA–DUB (the 2B pair) should differ from zero but stay small.
	near := m.BaseRTTMs(fra.Coord.DistanceKm(dub.Coord), m.StretchMean)
	if near < 10 || near > 50 {
		t.Errorf("FRA-DUB base RTT = %.1f ms, want 10–50", near)
	}
}

func TestSampleStretchBounds(t *testing.T) {
	m := DefaultPathModel()
	rng := rand.New(rand.NewSource(42))
	for _, dist := range []float64{500, 5000, 15000} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			s := m.SampleStretch(rng, dist)
			if s < 1.05 {
				t.Fatalf("stretch %v below physical floor", s)
			}
			if s > 6 {
				t.Fatalf("stretch %v implausibly large", s)
			}
			sum += s
		}
		mean := sum / n
		if math.Abs(mean-m.StretchMean) > 0.15 {
			t.Errorf("dist %v: mean stretch = %.3f, want ≈ %.2f", dist, mean, m.StretchMean)
		}
	}
}

func TestSampleStretchVarianceGrowsWithDistance(t *testing.T) {
	m := DefaultPathModel()
	rng := rand.New(rand.NewSource(9))
	variance := func(dist float64) float64 {
		const n = 20000
		var sum, sq float64
		for i := 0; i < n; i++ {
			s := m.SampleStretch(rng, dist)
			sum += s
			sq += s * s
		}
		mean := sum / n
		return sq/n - mean*mean
	}
	short, long := variance(500), variance(15000)
	if long < 2*short {
		t.Errorf("stretch variance should grow with distance: short=%.4f long=%.4f", short, long)
	}
}

func TestJitterScalesWithDistance(t *testing.T) {
	m := DefaultPathModel()
	rng := rand.New(rand.NewSource(7))
	meanJitter := func(base float64) float64 {
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			j := m.JitterMs(rng, base)
			if j < 0 {
				t.Fatalf("negative jitter %v", j)
			}
			sum += j
		}
		return sum / n
	}
	near := meanJitter(40)
	far := meanJitter(350)
	if far < 3*near {
		t.Errorf("jitter should grow with base RTT: near=%.2f far=%.2f", near, far)
	}
}

func TestLastMileDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var over60, n int
	for i := 0; i < 10000; i++ {
		v := LastMileMs(rng)
		if v < 0 || v > 120 {
			t.Fatalf("last mile %v out of [0,120]", v)
		}
		if v > 60 {
			over60++
		}
		n++
	}
	if frac := float64(over60) / float64(n); frac > 0.10 {
		t.Errorf("too many slow last-miles: %.2f > 0.10", frac)
	}
}

func BenchmarkDistanceKm(b *testing.B) {
	a, c := MustSite("FRA").Coord, MustSite("SYD").Coord
	for i := 0; i < b.N; i++ {
		_ = a.DistanceKm(c)
	}
}
