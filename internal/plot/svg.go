// Package plot renders the paper's figures as standalone SVG files
// using only the standard library. It provides the four chart shapes
// the evaluation needs: box-and-whisker plots (Figure 2), bar charts
// with paired RTT markers (Figure 3), sorted-fraction curves and line
// series (Figures 4 and 6), and scatter plots (Figure 5).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Default canvas geometry.
const (
	defaultWidth  = 640
	defaultHeight = 400
	marginLeft    = 64
	marginRight   = 24
	marginTop     = 36
	marginBottom  = 56
)

// Palette is the series colour cycle.
var Palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#17becf", "#7f7f7f",
}

// Canvas accumulates SVG elements.
type Canvas struct {
	W, H  int
	Title string
	XUnit string // x-axis label
	YUnit string // y-axis label

	body strings.Builder
}

// NewCanvas creates a default-sized canvas.
func NewCanvas(title, xUnit, yUnit string) *Canvas {
	return &Canvas{
		W: defaultWidth, H: defaultHeight,
		Title: title, XUnit: xUnit, YUnit: yUnit,
	}
}

// plotArea returns the drawable region.
func (c *Canvas) plotArea() (x0, y0, x1, y1 float64) {
	return marginLeft, marginTop, float64(c.W) - marginRight, float64(c.H) - marginBottom
}

// esc escapes text for XML.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Line draws a line segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, color string, width float64, dashed bool) {
	dash := ""
	if dashed {
		dash = ` stroke-dasharray="5,4"`
	}
	fmt.Fprintf(&c.body,
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"%s/>`+"\n",
		x1, y1, x2, y2, color, width, dash)
}

// Rect draws a rectangle.
func (c *Canvas) Rect(x, y, w, h float64, fill, stroke string) {
	fmt.Fprintf(&c.body,
		`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s"/>`+"\n",
		x, y, w, h, fill, stroke)
}

// Circle draws a dot.
func (c *Canvas) Circle(x, y, r float64, fill string) {
	fmt.Fprintf(&c.body, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

// Text places a label. anchor is "start", "middle" or "end".
func (c *Canvas) Text(x, y float64, s, anchor string, size int) {
	fmt.Fprintf(&c.body,
		`<text x="%.1f" y="%.1f" text-anchor="%s" font-size="%d" font-family="sans-serif">%s</text>`+"\n",
		x, y, anchor, size, esc(s))
}

// Polyline draws a connected series.
func (c *Canvas) Polyline(xs, ys []float64, color string, width float64) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return
	}
	var pts strings.Builder
	for i := range xs {
		fmt.Fprintf(&pts, "%.1f,%.1f ", xs[i], ys[i])
	}
	fmt.Fprintf(&c.body,
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		strings.TrimSpace(pts.String()), color, width)
}

// SVG renders the document.
func (c *Canvas) SVG() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.W, c.H, c.W, c.H)
	fmt.Fprintf(&sb, `<rect x="0" y="0" width="%d" height="%d" fill="white"/>`+"\n", c.W, c.H)
	if c.Title != "" {
		fmt.Fprintf(&sb,
			`<text x="%d" y="22" text-anchor="middle" font-size="14" font-weight="bold" font-family="sans-serif">%s</text>`+"\n",
			c.W/2, esc(c.Title))
	}
	sb.WriteString(c.body.String())
	x0, _, x1, y1 := c.plotArea()
	if c.XUnit != "" {
		fmt.Fprintf(&sb,
			`<text x="%.1f" y="%.1f" text-anchor="middle" font-size="12" font-family="sans-serif">%s</text>`+"\n",
			(x0+x1)/2, y1+40, esc(c.XUnit))
	}
	if c.YUnit != "" {
		fmt.Fprintf(&sb,
			`<text x="16" y="%.1f" text-anchor="middle" font-size="12" font-family="sans-serif" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
			(marginTop+y1)/2, (marginTop+y1)/2, esc(c.YUnit))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// Scale maps data coordinates onto the canvas.
type Scale struct {
	DataMin, DataMax float64
	PixMin, PixMax   float64
}

// Pos converts a data value to a pixel position.
func (s Scale) Pos(v float64) float64 {
	if s.DataMax == s.DataMin {
		return (s.PixMin + s.PixMax) / 2
	}
	t := (v - s.DataMin) / (s.DataMax - s.DataMin)
	return s.PixMin + t*(s.PixMax-s.PixMin)
}

// niceTicks returns ~n human-friendly tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo, hi}
	}
	span := hi - lo
	rawStep := span / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	for _, m := range []float64{1, 2, 5, 10} {
		step = m * mag
		if step >= rawStep {
			break
		}
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// drawAxes renders the frame, ticks and tick labels for the scales.
func (c *Canvas) drawAxes(xs, ys Scale, xTickLabels map[float64]string) {
	x0, y0, x1, y1 := c.plotArea()
	c.Line(x0, y1, x1, y1, "#333", 1, false)
	c.Line(x0, y0, x0, y1, "#333", 1, false)
	if xTickLabels != nil {
		keys := make([]float64, 0, len(xTickLabels))
		for k := range xTickLabels {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		for _, v := range keys {
			px := xs.Pos(v)
			c.Line(px, y1, px, y1+5, "#333", 1, false)
			c.Text(px, y1+20, xTickLabels[v], "middle", 11)
		}
	} else {
		for _, v := range niceTicks(xs.DataMin, xs.DataMax, 6) {
			px := xs.Pos(v)
			c.Line(px, y1, px, y1+5, "#333", 1, false)
			c.Text(px, y1+20, trimFloat(v), "middle", 11)
		}
	}
	for _, v := range niceTicks(ys.DataMin, ys.DataMax, 6) {
		py := ys.Pos(v)
		c.Line(x0-5, py, x0, py, "#333", 1, false)
		c.Line(x0, py, x1, py, "#eee", 1, false)
		c.Text(x0-8, py+4, trimFloat(v), "end", 11)
	}
}

// trimFloat formats a tick value without trailing zeros.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// legend draws a simple legend in the top-right of the plot area.
func (c *Canvas) legend(names []string) {
	_, y0, x1, _ := c.plotArea()
	for i, name := range names {
		y := y0 + 14*float64(i) + 4
		color := Palette[i%len(Palette)]
		c.Line(x1-110, y, x1-90, y, color, 2.5, false)
		c.Text(x1-84, y+4, name, "start", 11)
	}
}
