package plot

import (
	"encoding/xml"
	"strings"
	"testing"

	"ritw/internal/stats"
)

// assertWellFormed parses the SVG as XML and checks core structure.
func assertWellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	elements := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
		if _, ok := tok.(xml.StartElement); ok {
			elements++
		}
	}
	if elements < 5 {
		t.Fatalf("suspiciously empty SVG (%d elements)", elements)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("missing svg envelope")
	}
}

func sampleBox(median float64) stats.BoxPlot {
	return stats.BoxPlot{N: 100, P10: median / 2, Q1: median * 0.8, Median: median,
		Q3: median * 1.5, P90: median * 3}
}

func TestBoxChart(t *testing.T) {
	svg := BoxChart("Figure 2", "queries after first", []BoxGroup{
		{Label: "2A (96.0%)", Box: sampleBox(1)},
		{Label: "4B (75.2%)", Box: sampleBox(6)},
	})
	assertWellFormed(t, svg)
	for _, want := range []string{"Figure 2", "2A (96.0%)", "4B (75.2%)", "rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("box chart missing %q", want)
		}
	}
}

func TestShareRTTChart(t *testing.T) {
	svg := ShareRTTChart("Figure 3 — 2C", []ShareRTTBar{
		{Label: "FRA", Share: 0.64, MedianRTT: 48},
		{Label: "SYD", Share: 0.36, MedianRTT: 312},
	})
	assertWellFormed(t, svg)
	for _, want := range []string{"FRA", "SYD", "312ms", "48ms"} {
		if !strings.Contains(svg, want) {
			t.Errorf("share chart missing %q", want)
		}
	}
}

func TestLineChart(t *testing.T) {
	svg := LineChart("Figure 6", "interval (min)", "fraction to FRA", []Series{
		{Name: "EU", X: []float64{2, 5, 10, 30}, Y: []float64{0.73, 0.73, 0.67, 0.65}},
		{Name: "OC", X: []float64{2, 5, 10, 30}, Y: []float64{0.26, 0.36, 0.35, 0.36}},
	}, 0, 1)
	assertWellFormed(t, svg)
	for _, want := range []string{"polyline", "EU", "OC", "interval (min)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("line chart missing %q", want)
		}
	}
}

func TestScatterChart(t *testing.T) {
	svg := ScatterChart("Figure 5", "RTT (ms)", "fraction of queries", []ScatterPoint{
		{X: 40, Y: 0.56, Label: "EU", Color: 0},
		{X: 227, Y: 0.47, Label: "AS", Color: 1},
	}, 0, 1)
	assertWellFormed(t, svg)
	if !strings.Contains(svg, "circle") || !strings.Contains(svg, "EU") {
		t.Error("scatter chart incomplete")
	}
}

func TestBandChart(t *testing.T) {
	svg := BandChart("Figure 7 (top)", []Band{
		{Label: "r1", Shares: []float64{0.6, 0.2, 0.1, 0.1}},
		{Label: "r2", Shares: []float64{1.0}},
	})
	assertWellFormed(t, svg)
	if !strings.Contains(svg, "r1") || !strings.Contains(svg, "r2") {
		t.Error("band chart missing labels")
	}
}

func TestTextEscaping(t *testing.T) {
	c := NewCanvas(`<&">`, "x", "y")
	c.Text(10, 10, `a<b & "c"`, "start", 10)
	c.Text(20, 20, "plain", "start", 10)
	c.Line(0, 0, 1, 1, "#000", 1, true)
	svg := c.SVG()
	assertWellFormed(t, svg)
	if strings.Contains(svg, `a<b`) {
		t.Error("unescaped text in SVG")
	}
	if !strings.Contains(svg, "a&lt;b") {
		t.Error("escaped text missing")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 1, 6)
	if len(ticks) < 4 || ticks[0] < 0 || ticks[len(ticks)-1] > 1.0001 {
		t.Errorf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	ticks = niceTicks(0, 353, 6)
	if len(ticks) < 3 {
		t.Errorf("rtt ticks = %v", ticks)
	}
	if got := niceTicks(5, 5, 6); len(got) != 2 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestScalePos(t *testing.T) {
	s := Scale{DataMin: 0, DataMax: 10, PixMin: 100, PixMax: 200}
	if s.Pos(0) != 100 || s.Pos(10) != 200 || s.Pos(5) != 150 {
		t.Errorf("scale positions wrong")
	}
	deg := Scale{DataMin: 3, DataMax: 3, PixMin: 0, PixMax: 10}
	if deg.Pos(3) != 5 {
		t.Error("degenerate scale should centre")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{0: "0", 0.5: "0.5", 1: "1", 0.25: "0.25", 100: "100"}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPolylineEdgeCases(t *testing.T) {
	c := NewCanvas("t", "", "")
	c.Polyline(nil, nil, "#000", 1)                    // no-op
	c.Polyline([]float64{1}, []float64{1, 2}, "#0", 1) // mismatched: no-op
	svg := c.SVG()
	if strings.Contains(svg, "polyline") {
		t.Error("degenerate polylines should be skipped")
	}
}
