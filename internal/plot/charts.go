package plot

import (
	"fmt"

	"ritw/internal/stats"
)

// BoxGroup is one box of a box-and-whisker chart (Figure 2).
type BoxGroup struct {
	Label string // x label, e.g. "2A (96.0%)"
	Box   stats.BoxPlot
}

// BoxChart renders quartile boxes with 10/90-percentile whiskers, the
// exact shape of the paper's Figure 2.
func BoxChart(title, yUnit string, groups []BoxGroup) string {
	c := NewCanvas(title, "authoritative combination", yUnit)
	x0, y0, x1, y1 := c.plotArea()

	maxY := 1.0
	for _, g := range groups {
		if g.Box.P90 > maxY {
			maxY = g.Box.P90
		}
	}
	ys := Scale{DataMin: 0, DataMax: maxY * 1.1, PixMin: y1, PixMax: y0}
	xTicks := map[float64]string{}
	n := len(groups)
	slot := (x1 - x0) / float64(max(n, 1))
	for i, g := range groups {
		cx := x0 + slot*(float64(i)+0.5)
		xTicks[cx] = g.Label
		half := slot * 0.22
		b := g.Box
		// Whiskers.
		c.Line(cx, ys.Pos(b.P10), cx, ys.Pos(b.Q1), "#333", 1.2, false)
		c.Line(cx, ys.Pos(b.Q3), cx, ys.Pos(b.P90), "#333", 1.2, false)
		c.Line(cx-half/2, ys.Pos(b.P10), cx+half/2, ys.Pos(b.P10), "#333", 1.2, false)
		c.Line(cx-half/2, ys.Pos(b.P90), cx+half/2, ys.Pos(b.P90), "#333", 1.2, false)
		// Quartile box and median.
		c.Rect(cx-half, ys.Pos(b.Q3), 2*half, ys.Pos(b.Q1)-ys.Pos(b.Q3), "#9ecae1", "#333")
		c.Line(cx-half, ys.Pos(b.Median), cx+half, ys.Pos(b.Median), "#d62728", 2, false)
	}
	xs := Scale{DataMin: x0, DataMax: x1, PixMin: x0, PixMax: x1}
	c.drawAxes(xs, ys, xTicks)
	return c.SVG()
}

// ShareRTTBar is one site of Figure 3: a query-share bar plus its
// median-RTT marker.
type ShareRTTBar struct {
	Label     string
	Share     float64 // 0..1
	MedianRTT float64 // ms
}

// ShareRTTChart renders Figure 3's paired view: bars for query share
// (left axis, 0..1) and dots for median RTT (right axis, ms).
func ShareRTTChart(title string, bars []ShareRTTBar) string {
	c := NewCanvas(title, "authoritative site", "query share")
	x0, y0, x1, y1 := c.plotArea()
	maxRTT := 1.0
	for _, b := range bars {
		if b.MedianRTT > maxRTT {
			maxRTT = b.MedianRTT
		}
	}
	shareScale := Scale{DataMin: 0, DataMax: 1, PixMin: y1, PixMax: y0}
	rttScale := Scale{DataMin: 0, DataMax: maxRTT * 1.15, PixMin: y1, PixMax: y0}

	xTicks := map[float64]string{}
	slot := (x1 - x0) / float64(max(len(bars), 1))
	for i, b := range bars {
		cx := x0 + slot*(float64(i)+0.5)
		xTicks[cx] = b.Label
		half := slot * 0.3
		c.Rect(cx-half, shareScale.Pos(b.Share), 2*half, y1-shareScale.Pos(b.Share), "#9ecae1", "#333")
		c.Circle(cx, rttScale.Pos(b.MedianRTT), 5, "#d62728")
		c.Text(cx, rttScale.Pos(b.MedianRTT)-9, fmt.Sprintf("%.0fms", b.MedianRTT), "middle", 10)
	}
	xs := Scale{DataMin: x0, DataMax: x1, PixMin: x0, PixMax: x1}
	c.drawAxes(xs, shareScale, xTicks)
	c.Text(x1, y0-6, "dots: median RTT", "end", 11)
	return c.SVG()
}

// Series is one named line of a line chart.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart renders multiple series with a legend — Figure 4's sorted
// per-recursive fractions and Figure 6's interval sweep.
func LineChart(title, xUnit, yUnit string, series []Series, yMin, yMax float64) string {
	c := NewCanvas(title, xUnit, yUnit)
	x0, y0, x1, y1 := c.plotArea()
	xMin, xMax := 0.0, 1.0
	first := true
	for _, s := range series {
		for _, v := range s.X {
			if first {
				xMin, xMax = v, v
				first = false
				continue
			}
			if v < xMin {
				xMin = v
			}
			if v > xMax {
				xMax = v
			}
		}
	}
	xs := Scale{DataMin: xMin, DataMax: xMax, PixMin: x0, PixMax: x1}
	ys := Scale{DataMin: yMin, DataMax: yMax, PixMin: y1, PixMax: y0}
	c.drawAxes(xs, ys, nil)
	names := make([]string, 0, len(series))
	for i, s := range series {
		px := make([]float64, len(s.X))
		py := make([]float64, len(s.Y))
		for j := range s.X {
			px[j] = xs.Pos(s.X[j])
			py[j] = ys.Pos(s.Y[j])
		}
		c.Polyline(px, py, Palette[i%len(Palette)], 2)
		names = append(names, s.Name)
	}
	c.legend(names)
	return c.SVG()
}

// ScatterPoint is one dot of a scatter chart (Figure 5).
type ScatterPoint struct {
	X, Y  float64
	Label string
	Color int // palette index
}

// ScatterChart renders labelled points — Figure 5's RTT sensitivity.
func ScatterChart(title, xUnit, yUnit string, points []ScatterPoint, yMin, yMax float64) string {
	c := NewCanvas(title, xUnit, yUnit)
	x0, y0, x1, y1 := c.plotArea()
	xMin, xMax := 0.0, 1.0
	for i, p := range points {
		if i == 0 {
			xMin, xMax = p.X, p.X
		}
		if p.X < xMin {
			xMin = p.X
		}
		if p.X > xMax {
			xMax = p.X
		}
	}
	pad := (xMax - xMin) * 0.08
	xs := Scale{DataMin: xMin - pad, DataMax: xMax + pad, PixMin: x0, PixMax: x1}
	ys := Scale{DataMin: yMin, DataMax: yMax, PixMin: y1, PixMax: y0}
	c.drawAxes(xs, ys, nil)
	for _, p := range points {
		c.Circle(xs.Pos(p.X), ys.Pos(p.Y), 5, Palette[p.Color%len(Palette)])
		if p.Label != "" {
			c.Text(xs.Pos(p.X), ys.Pos(p.Y)-8, p.Label, "middle", 10)
		}
	}
	_ = y0
	return c.SVG()
}

// Band is one recursive-rank band of Figure 7.
type Band struct {
	Label string
	// Shares are the mean per-rank query fractions, most-used first;
	// they are stacked bottom-to-top.
	Shares []float64
}

// BandChart renders Figure 7's stacked rank bands.
func BandChart(title string, bands []Band) string {
	c := NewCanvas(title, "", "fraction of queries")
	x0, y0, x1, y1 := c.plotArea()
	ys := Scale{DataMin: 0, DataMax: 1, PixMin: y1, PixMax: y0}
	xTicks := map[float64]string{}
	slot := (x1 - x0) / float64(max(len(bands), 1))
	for i, b := range bands {
		cx := x0 + slot*(float64(i)+0.5)
		xTicks[cx] = b.Label
		half := slot * 0.35
		bottom := 0.0
		for r, share := range b.Shares {
			top := bottom + share
			c.Rect(cx-half, ys.Pos(top), 2*half, ys.Pos(bottom)-ys.Pos(top),
				Palette[r%len(Palette)], "white")
			bottom = top
		}
	}
	xs := Scale{DataMin: x0, DataMax: x1, PixMin: x0, PixMax: x1}
	c.drawAxes(xs, ys, xTicks)
	return c.SVG()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
