//go:build linux && arm64

package blast

// sendmmsg/recvmmsg numbers for the arm64 (generic unistd) syscall
// table; see mmsg_linux_amd64.go for why these live here.
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
