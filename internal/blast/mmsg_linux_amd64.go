//go:build linux && amd64

package blast

// The stdlib syscall package predates sendmmsg/recvmmsg and never
// gained their numbers, so we carry them per-architecture (they are
// ABI constants, frozen since Linux 3.0 / 2.6.33).
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
