//go:build !linux || !(amd64 || arm64)

package blast

import (
	"errors"
	"net"
)

// Portable stub: platforms without the sendmmsg/recvmmsg fast path
// fall back to single-packet net.UDPConn I/O (portableIO).

const mmsgSupported = false

func newMmsgIO(conn *net.UDPConn, batch int) (packetIO, error) {
	return nil, errors.New("blast: batched I/O not supported on this platform")
}
