package blast

import (
	"context"
	"net"
	"testing"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
)

// newUDPHole binds a loopback UDP socket that is never read: a black
// hole that accepts datagrams and answers nothing.
func newUDPHole(t *testing.T) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	return pc.LocalAddr().String()
}

// soakConfig is the shared deterministic loopback setup: a modest rate
// the container always sustains, full response validation, and an
// NXDOMAIN tail so the rcode mix is non-trivial.
func soakFleet(t *testing.T) *Fleet {
	t.Helper()
	fleet, err := SpawnFleet(FleetConfig{Names: 256, NXRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	return fleet
}

// TestSoakAccounting drives the in-process fleet over real loopback
// sockets and checks the harness's books: every sent query is either
// answered or a timeout (never both, never neither), the rcode tallies
// agree with what the server engines report serving, and nothing is
// flagged as malformed.
func TestSoakAccounting(t *testing.T) {
	fleet := soakFleet(t)
	reg := obs.NewRegistry()
	// Modest rate, generous timeout: on a loaded single-core CI
	// machine a GC pause can hold the server past a tight deadline,
	// and a late answer should count as answered, not as loss.
	res, err := Run(context.Background(), Config{
		Addrs:    fleet.Addrs(),
		QPS:      2500,
		Duration: 2 * time.Second,
		Workers:  2,
		Timeout:  3 * time.Second,
		Names:    fleet.Names(),
		Validate: true,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Sent != res.Answered+res.Timeouts {
		t.Fatalf("accounting: sent=%d != answered=%d + timeouts=%d",
			res.Sent, res.Answered, res.Timeouts)
	}
	if res.ParseErrors != 0 || res.EncodeErrors != 0 || res.SendErrors != 0 {
		t.Fatalf("errors on a clean loopback run: parse=%d encode=%d send=%d",
			res.ParseErrors, res.EncodeErrors, res.SendErrors)
	}
	// Loopback at 5k qps should essentially never lose queries; a few
	// stragglers are tolerated so the test is not flaky under -race.
	if res.LossFrac() > 0.01 {
		t.Fatalf("loss %.2f%% on loopback", 100*res.LossFrac())
	}

	// The harness's view must agree with the servers': every answered
	// query was served, and the servers saw at most what was sent.
	if served := int64(fleet.Stats().Queries); served < res.Answered || served > res.Sent {
		t.Fatalf("fleet served %d; harness sent %d, answered %d", served, res.Sent, res.Answered)
	}
	var rcodeSum int64
	for _, v := range res.RCodes {
		rcodeSum += v
	}
	if rcodeSum != res.Answered {
		t.Fatalf("rcode tallies sum to %d, answered %d", rcodeSum, res.Answered)
	}
	// The query set is 256 existing + 64 missing names walked
	// round-robin, so both rcodes must show up in a 10k-query run.
	if res.RCodes[dnswire.RCodeNoError] == 0 || res.RCodes[dnswire.RCodeNXDomain] == 0 {
		t.Fatalf("rcode mix missing a class: %v", res.RCodes)
	}

	// The shared registry carries the same numbers.
	snap := reg.Snapshot()
	if got := snap.Counters["blast_sent_total"]; got != res.Sent {
		t.Fatalf("registry sent=%d, result sent=%d", got, res.Sent)
	}
	if got := snap.Counters[obs.LabelName("blast_rcode_total", "rcode", "NXDOMAIN")]; got != res.RCodes[dnswire.RCodeNXDomain] {
		t.Fatalf("registry NXDOMAIN=%d, result=%d", got, res.RCodes[dnswire.RCodeNXDomain])
	}
	if res.Latency.N() == 0 {
		t.Fatal("no latency samples")
	}
}

// TestCancelShutsDownCleanly cancels a long run early and checks that
// Run returns promptly, reports the cancellation, and the books still
// balance over the partial run.
func TestCancelShutsDownCleanly(t *testing.T) {
	fleet := soakFleet(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Config{
		Addrs:    fleet.Addrs(),
		QPS:      2000,
		Duration: 30 * time.Second, // never reached
		Timeout:  5 * time.Second,
		Workers:  2,
		Names:    fleet.Names(),
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancel took %v to unwind", took)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent before cancel")
	}
	if res.Sent != res.Answered+res.Timeouts {
		t.Fatalf("post-cancel accounting: sent=%d answered=%d timeouts=%d",
			res.Sent, res.Answered, res.Timeouts)
	}
}

// TestTimeoutsAreCounted aims the harness at a socket nobody answers:
// every query must come back as a timeout, none as answered.
func TestTimeoutsAreCounted(t *testing.T) {
	// A bound-but-unread UDP socket swallows datagrams silently.
	hole := newUDPHole(t)
	res, err := Run(context.Background(), Config{
		Addrs:    []string{hole},
		QPS:      500,
		Duration: 500 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
		Workers:  1,
		Names:    []dnswire.Name{dnswire.MustParseName("q.blast.test.")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Answered != 0 {
		t.Fatalf("black hole answered %d queries", res.Answered)
	}
	if res.Timeouts != res.Sent {
		t.Fatalf("timeouts=%d, want all %d", res.Timeouts, res.Sent)
	}
}

// TestMmsgMatchesPortable is the differential test: the batched and
// single-packet I/O paths drive identical runs and must agree on the
// invariants — exact accounting, zero errors, same rcode classes —
// differing only in throughput. Skipped where mmsg is unavailable.
func TestMmsgMatchesPortable(t *testing.T) {
	if !BatchedSupported() {
		t.Skip("no sendmmsg/recvmmsg on this platform")
	}
	fleet := soakFleet(t)
	run := func(mode Mode) Result {
		t.Helper()
		res, err := Run(context.Background(), Config{
			Addrs:    fleet.Addrs(),
			QPS:      2000,
			Duration: time.Second,
			Workers:  2,
			Timeout:  3 * time.Second,
			Mode:     mode,
			Names:    fleet.Names(),
			Validate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	batched := run(ModeBatched)
	portable := run(ModePortable)

	for _, r := range []Result{batched, portable} {
		if r.Sent != r.Answered+r.Timeouts {
			t.Fatalf("%s accounting: %+v", r.Mode, r)
		}
		if r.ParseErrors+r.EncodeErrors+r.SendErrors != 0 {
			t.Fatalf("%s had errors: %+v", r.Mode, r)
		}
		if r.LossFrac() > 0.01 {
			t.Fatalf("%s loss %.2f%%", r.Mode, 100*r.LossFrac())
		}
	}
	if batched.Mode != "mmsg" || portable.Mode != "udp" {
		t.Fatalf("modes: %s / %s", batched.Mode, portable.Mode)
	}
	// Same offered load, same query mix: the NXDOMAIN share must agree
	// within a few percent (round-robin over the same name set).
	bShare := float64(batched.RCodes[dnswire.RCodeNXDomain]) / float64(batched.Answered)
	pShare := float64(portable.RCodes[dnswire.RCodeNXDomain]) / float64(portable.Answered)
	if diff := bShare - pShare; diff > 0.05 || diff < -0.05 {
		t.Fatalf("NXDOMAIN share diverged: mmsg=%.3f udp=%.3f", bShare, pShare)
	}
}

// TestSweepProducesMonotonicOfferedCurve checks the sweep plumbing:
// ascending rates, one point per rate, a well-formed Markdown table.
func TestSweepProducesMonotonicOfferedCurve(t *testing.T) {
	fleet := soakFleet(t)
	rates := SweepRates(2000, 3) // 500, 1000, 2000
	if len(rates) != 3 || rates[0] != 500 || rates[2] != 2000 {
		t.Fatalf("SweepRates = %v", rates)
	}
	points, err := Sweep(context.Background(), Config{
		Addrs:    fleet.Addrs(),
		QPS:      0, // overridden per point
		Duration: 400 * time.Millisecond,
		Workers:  2,
		Names:    fleet.Names(),
	}, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rates) {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.Offered != rates[i] {
			t.Fatalf("point %d offered %f, want %f", i, p.Offered, rates[i])
		}
		if p.Res.Sent != p.Res.Answered+p.Res.Timeouts {
			t.Fatalf("point %d accounting: %+v", i, p.Res)
		}
	}
	table := SweepTable(points)
	if want := "| offered qps |"; len(table) == 0 || table[:len(want)] != want {
		t.Fatalf("table header: %q", table)
	}
}

// TestConfigValidation covers the error paths callers hit first.
func TestConfigValidation(t *testing.T) {
	name := dnswire.MustParseName("q.blast.test.")
	cases := []struct {
		label string
		cfg   Config
	}{
		{"no addrs", Config{QPS: 100, Names: []dnswire.Name{name}}},
		{"no names", Config{QPS: 100, Addrs: []string{"127.0.0.1:1"}}},
		{"zero qps", Config{Addrs: []string{"127.0.0.1:1"}, Names: []dnswire.Name{name}}},
		// 200k qps on one worker with a 1s timeout wraps the 65536-entry
		// per-worker ID table mid-flight: explicit configs must be
		// rejected, not silently miscounted.
		{"id wrap", Config{Addrs: []string{"127.0.0.1:1"}, Names: []dnswire.Name{name},
			QPS: 200_000, Workers: 1, Timeout: time.Second}},
	}
	for _, c := range cases {
		if _, err := Run(context.Background(), c.cfg); err == nil {
			t.Errorf("%s: no error", c.label)
		}
	}
	if _, err := ParseMode("tcp"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
	for _, s := range []string{"auto", "mmsg", "udp"} {
		m, err := ParseMode(s)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", s, err)
		} else if m.String() != s {
			t.Errorf("round trip %q -> %q", s, m.String())
		}
	}
}

// TestWorkersAutoScaleUnderIDWrap checks that the default worker count
// grows with the offered rate so per-worker IDs issued within one
// timeout window never reach the table size — the bound Run enforces
// on explicit configs.
func TestWorkersAutoScaleUnderIDWrap(t *testing.T) {
	cfg := Config{QPS: 1_000_000}.withDefaults()
	if perWorker := cfg.QPS / float64(cfg.Workers) * cfg.Timeout.Seconds(); perWorker >= idSlots {
		t.Fatalf("defaults leave %.0f IDs in flight per worker (workers=%d), want < %d",
			perWorker, cfg.Workers, idSlots)
	}
	// An explicitly safe config is left alone.
	cfg = Config{QPS: 1000, Workers: 3}.withDefaults()
	if cfg.Workers != 3 {
		t.Fatalf("explicit Workers overridden to %d", cfg.Workers)
	}
}
