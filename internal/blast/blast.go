// Package blast is the live-socket load harness: an open-loop,
// concurrent UDP query engine in the style of ZDNS that drives real
// authoritative servers — the in-process fleet or any remote address —
// at a target aggregate QPS and records what came back.
//
// Architecture, in one breath: the offered load is split across
// Workers, each owning one connected UDP socket (its own ephemeral
// port, so the kernel demultiplexes responses per worker), a
// token-bucket pacer, a set of pre-encoded query templates, and a
// 65536-slot in-flight table indexed by DNS message ID. The sender
// goroutine paces batches onto the wire — `sendmmsg` on Linux, a
// single-packet portable fallback elsewhere — stamping each ID's slot
// with a send time; the receiver goroutine drains the socket
// (`recvmmsg` / single reads), correlates responses by (socket, ID),
// and turns the slot stamp into a latency sample. A slot that is
// overwritten or still stamped when the run drains is a timeout, so
// Sent == Answered + Timeouts holds exactly.
//
// Open loop means the send schedule never waits for responses: when
// the server falls behind, latency and loss rise but offered load does
// not sag, which is what makes the offered-vs-achieved throughput
// curve meaningful (closed-loop harnesses self-throttle and hide the
// knee; see DESIGN.md §8.6).
//
// Results flow into an obs.Registry (live dashboard) and per-worker
// stats.QuantileSketch reservoirs (final percentiles).
package blast

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
	"ritw/internal/stats"
)

// Mode selects the socket I/O implementation.
type Mode int

const (
	// ModeAuto uses batched sendmmsg/recvmmsg where the platform
	// supports it and the portable single-packet path elsewhere.
	ModeAuto Mode = iota
	// ModeBatched forces the batched syscalls; Run errors where they
	// are unavailable.
	ModeBatched
	// ModePortable forces the single-packet net.UDPConn path.
	ModePortable
)

// ParseMode parses "auto", "mmsg" or "udp".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "auto":
		return ModeAuto, nil
	case "mmsg":
		return ModeBatched, nil
	case "udp":
		return ModePortable, nil
	}
	return 0, fmt.Errorf("blast: unknown mode %q (auto|mmsg|udp)", s)
}

func (m Mode) String() string {
	switch m {
	case ModeBatched:
		return "mmsg"
	case ModePortable:
		return "udp"
	}
	return "auto"
}

// BatchedSupported reports whether this platform has the
// sendmmsg/recvmmsg fast path.
func BatchedSupported() bool { return mmsgSupported }

// Config parameterizes one load run.
type Config struct {
	// Addrs are the target server addresses (host:port). Workers are
	// assigned round-robin across them, so a fleet of targets shares
	// the offered load evenly.
	Addrs []string
	// QPS is the aggregate offered query rate across all workers.
	QPS float64
	// Duration is the length of the send phase; the run then drains
	// in-flight queries for Timeout before accounting.
	Duration time.Duration
	// Workers is the number of socket shards (default GOMAXPROCS).
	Workers int
	// Batch bounds how many datagrams one sendmmsg/recvmmsg call
	// moves, and how far a stalled sender may burst to catch up with
	// its schedule (default 64).
	Batch int
	// Timeout is how long a query may stay unanswered before it
	// counts as lost (default 1s).
	Timeout time.Duration
	// Names is the query set; senders walk it round-robin. Required.
	Names []dnswire.Name
	// QType is the query type (default TXT).
	QType dnswire.Type
	// EDNSSize, when nonzero, advertises EDNS0 with that UDP size.
	EDNSSize uint16
	// DNSSECOK sets the DO bit on the advertised OPT.
	DNSSECOK bool
	// Mode selects batched vs portable socket I/O.
	Mode Mode
	// Validate fully decodes every response instead of the header-only
	// fast path, surfacing malformed packets as parse errors. Costs
	// allocations per response; meant for smoke tests, not 1M-QPS runs.
	Validate bool
	// Metrics, when set, receives the run's counters and latency
	// histogram. Leave nil to give the run a private registry (always
	// the case for sweep points, which must not share counters).
	Metrics *obs.Registry
	// SketchCap bounds each worker's latency reservoir (0 = exact).
	SketchCap int
	// Seed fixes the reservoir sampling choices.
	Seed int64
	// OnProgress, when set, is called every ProgressInterval with a
	// snapshot of the run (the live dashboard hook).
	OnProgress func(Progress)
	// ProgressInterval is the OnProgress cadence (default 1s).
	ProgressInterval time.Duration
}

// Progress is a live snapshot handed to Config.OnProgress.
type Progress struct {
	Elapsed   time.Duration
	Sent      int64
	Answered  int64
	Timeouts  int64
	Unmatched int64
	Errors    int64 // parse + send + encode errors
	// SentRate and AnsweredRate are measured over the last interval.
	SentRate     float64
	AnsweredRate float64
	// P50us/P99us are histogram estimates over the whole run so far.
	P50us, P99us float64
}

// Result is the accounting of one run. Sent == Answered + Timeouts
// holds exactly: every sent query either matched a response or was
// reaped as a timeout (at ID reuse or in the final sweep).
type Result struct {
	Mode        string
	Offered     float64
	Workers     int
	SendSeconds float64 // actual send-phase duration

	Sent         int64
	Answered     int64
	Timeouts     int64
	Unmatched    int64 // responses with no in-flight query (stray/dup)
	Truncated    int64 // answered responses carrying TC
	ParseErrors  int64
	EncodeErrors int64
	SendErrors   int64

	RCodes  map[dnswire.RCode]int64
	Latency stats.Summary // microseconds
}

// SentQPS is the achieved send rate.
func (r Result) SentQPS() float64 {
	if r.SendSeconds <= 0 {
		return 0
	}
	return float64(r.Sent) / r.SendSeconds
}

// AnsweredQPS is the achieved answer rate — the serving-path
// throughput the sweep curve records.
func (r Result) AnsweredQPS() float64 {
	if r.SendSeconds <= 0 {
		return 0
	}
	return float64(r.Answered) / r.SendSeconds
}

// LossFrac is the fraction of sent queries that timed out.
func (r Result) LossFrac() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Timeouts) / float64(r.Sent)
}

// maxQuery bounds an encoded query template: a 255-byte name plus
// fixed header, question and OPT overhead stays far below this.
const maxQuery = 512

// idSlots is the per-worker in-flight table size: one slot per DNS
// message ID. Correlation by ID is only sound while a worker cannot
// issue all 65536 IDs within one timeout window — past that, live
// slots get overwritten: the overwritten query is miscounted as a
// timeout and its late response matches the new query's stamp as a
// bogus near-zero latency sample. withDefaults scales the default
// worker count to stay under the bound; Run rejects explicit configs
// that violate it.
const idSlots = 1 << 16

// minWorkers is the smallest worker count keeping the IDs a worker
// issues within one timeout window strictly below its table size.
func minWorkers(qps float64, timeout time.Duration) int {
	return int(qps*timeout.Seconds()/idSlots) + 1
}

// recvBufSize fits any EDNS response we advertise for.
const recvBufSize = 4096

// latencyBoundsUs are the dashboard histogram buckets in microseconds:
// loopback serving sits in the tens of µs; a saturated queue or a WAN
// target climbs through milliseconds.
var latencyBoundsUs = []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 100000, 1000000}

// blastMetrics caches the run's obs instruments.
type blastMetrics struct {
	sent       *obs.Counter
	answered   *obs.Counter
	timeouts   *obs.Counter
	unmatched  *obs.Counter
	truncated  *obs.Counter
	parseErrs  *obs.Counter
	encodeErrs *obs.Counter
	sendErrs   *obs.Counter
	latency    *obs.Histogram
	rcodes     [16]*obs.Counter
	rcodeHigh  *obs.Counter
}

func newBlastMetrics(r *obs.Registry) *blastMetrics {
	m := &blastMetrics{
		sent:       r.Counter("blast_sent_total"),
		answered:   r.Counter("blast_answered_total"),
		timeouts:   r.Counter("blast_timeouts_total"),
		unmatched:  r.Counter("blast_unmatched_total"),
		truncated:  r.Counter("blast_truncated_total"),
		parseErrs:  r.Counter("blast_parse_errors_total"),
		encodeErrs: r.Counter("blast_encode_errors_total"),
		sendErrs:   r.Counter("blast_send_errors_total"),
		latency:    r.Histogram("blast_latency_us", latencyBoundsUs),
		rcodeHigh:  r.Counter(obs.LabelName("blast_rcode_total", "rcode", "OTHER")),
	}
	for rc := range m.rcodes {
		m.rcodes[rc] = r.Counter(obs.LabelName("blast_rcode_total", "rcode", dnswire.RCode(rc).String()))
	}
	return m
}

func (m *blastMetrics) rcode(rc dnswire.RCode) *obs.Counter {
	if int(rc) < len(m.rcodes) {
		return m.rcodes[rc]
	}
	return m.rcodeHigh
}

// packetIO abstracts the two socket paths so the worker loops are
// identical for batched and portable I/O.
type packetIO interface {
	// send transmits bufs in order and reports how many the kernel
	// accepted; a short count with nil error means retry the rest on
	// the next pacing round.
	send(bufs [][]byte) (int, error)
	// recv fills bufs with up to len(bufs) datagrams, records their
	// lengths in sizes, and reports how many arrived. A non-nil error
	// (deadline, closed socket) ends the receive loop after the
	// returned messages are processed.
	recv(bufs [][]byte, sizes []int) (int, error)
}

// portableIO is the single-packet fallback over net.UDPConn.
type portableIO struct{ conn *net.UDPConn }

func (p portableIO) send(bufs [][]byte) (int, error) {
	for i, b := range bufs {
		if _, err := p.conn.Write(b); err != nil {
			return i, err
		}
	}
	return len(bufs), nil
}

func (p portableIO) recv(bufs [][]byte, sizes []int) (int, error) {
	n, err := p.conn.Read(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	return 1, nil
}

// worker is one socket shard: its own connected UDP socket, pacer
// state, templates, and in-flight table.
type worker struct {
	conn *net.UDPConn
	io   packetIO

	templates [][]byte
	sendBufs  [][]byte
	sendIDs   []uint16
	recvBufs  [][]byte
	recvSizes []int

	// inflight[id] is the send stamp (ns since run start, never 0 for
	// an outstanding query) or 0 when the slot is free. The sender
	// writes stamps, the receiver swaps them out; both sides use
	// atomics so the correlation is race-free without a lock.
	inflight []int64

	nextID  uint32
	nameIdx int
	sketch  *stats.QuantileSketch
}

// newWorker dials addr and prepares buffers for the chosen I/O path.
func newWorker(addr string, cfg Config, batched bool, seed int64) (*worker, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("blast: dial %s: %w", addr, err)
	}
	udp := conn.(*net.UDPConn)
	w := &worker{
		conn:      udp,
		inflight:  make([]int64, idSlots),
		sendBufs:  make([][]byte, cfg.Batch),
		sendIDs:   make([]uint16, cfg.Batch),
		recvBufs:  make([][]byte, cfg.Batch),
		recvSizes: make([]int, cfg.Batch),
		sketch:    stats.NewQuantileSketch(cfg.SketchCap, seed),
	}
	for i := range w.sendBufs {
		w.sendBufs[i] = make([]byte, 0, maxQuery)
	}
	for i := range w.recvBufs {
		w.recvBufs[i] = make([]byte, recvBufSize)
	}
	for _, name := range cfg.Names {
		q := dnswire.NewQuery(0, name, cfg.QType)
		q.RecursionDesired = false
		if cfg.EDNSSize > 0 {
			q.SetEDNS0(cfg.EDNSSize, cfg.DNSSECOK)
		}
		wire, err := q.Pack()
		if err != nil || len(wire) > maxQuery {
			conn.Close()
			return nil, fmt.Errorf("blast: cannot encode query for %s: %v", name, err)
		}
		w.templates = append(w.templates, wire)
	}
	if batched {
		w.io, err = newMmsgIO(udp, cfg.Batch)
		if err != nil {
			conn.Close()
			return nil, err
		}
	} else {
		w.io = portableIO{conn: udp}
	}
	return w, nil
}

// sendLoop paces queries at rate QPS until sendUntil or cancellation.
// Open loop: the schedule is wall-clock driven; when the worker falls
// behind it bursts up to Batch per round to catch up, and never waits
// for responses.
func (w *worker) sendLoop(ctx context.Context, m *blastMetrics, base, sendUntil time.Time, rate float64) {
	var sent int64
	done := ctx.Done()
	for {
		select {
		case <-done:
			return
		default:
		}
		now := time.Now()
		if !now.Before(sendUntil) {
			return
		}
		due := int64(rate*now.Sub(base).Seconds()) - sent
		if due <= 0 {
			// Sleep toward the next token, bounded so cancellation
			// and the phase end stay responsive.
			next := base.Add(time.Duration(float64(sent+1) / rate * float64(time.Second)))
			d := time.Until(next)
			if until := time.Until(sendUntil); d > until {
				d = until
			}
			if d > 10*time.Millisecond {
				d = 10 * time.Millisecond
			}
			if d > 0 {
				time.Sleep(d)
			}
			continue
		}
		n := int(due)
		if n > len(w.sendBufs) {
			n = len(w.sendBufs)
		}
		for i := 0; i < n; i++ {
			tpl := w.templates[w.nameIdx]
			w.nameIdx++
			if w.nameIdx == len(w.templates) {
				w.nameIdx = 0
			}
			id := uint16(w.nextID)
			w.nextID++
			buf := append(w.sendBufs[i][:0], tpl...)
			binary.BigEndian.PutUint16(buf, id)
			w.sendBufs[i] = buf
			w.sendIDs[i] = id
		}
		// Stamp slots before handing the buffers to the kernel: on
		// loopback the receiver goroutine can process a response
		// before a post-send stamp would land, miscounting the answer
		// as unmatched and the query (later) as a timeout. The stamps
		// run a syscall early, which only shifts latency samples by
		// nanoseconds; slots for datagrams the kernel then refuses are
		// repaired after send.
		stamp := int64(time.Since(base))
		if stamp == 0 {
			stamp = 1 // 0 means "slot free"
		}
		for i := 0; i < n; i++ {
			// An occupied slot is a query that was never answered: Run
			// bounds the per-worker rate so IDs cannot wrap within one
			// timeout window, and this ID was issued idSlots queries
			// ago — its reply window has long passed.
			if old := atomic.SwapInt64(&w.inflight[w.sendIDs[i]], stamp); old != 0 {
				m.timeouts.Inc()
			}
		}
		nsent, err := w.io.send(w.sendBufs[:n])
		for i := nsent; i < n; i++ {
			// Never hit the wire: free the slot so the final sweep
			// does not reap a phantom timeout (Sent counts only nsent;
			// the pacer re-offers the deficit under fresh IDs).
			atomic.StoreInt64(&w.inflight[w.sendIDs[i]], 0)
		}
		m.sent.Add(int64(nsent))
		sent += int64(nsent)
		if err != nil {
			m.sendErrs.Inc()
			if nsent == 0 {
				// A hard send error (e.g. ICMP-refused target) would
				// otherwise hot-spin the pacer.
				time.Sleep(time.Millisecond)
			}
		}
	}
}

// recvLoop drains the socket until its read deadline (the drain
// deadline, or "now" on cancellation) fires.
func (w *worker) recvLoop(m *blastMetrics, base time.Time, validate bool) {
	for {
		n, err := w.io.recv(w.recvBufs, w.recvSizes)
		if n > 0 {
			now := int64(time.Since(base))
			for i := 0; i < n; i++ {
				w.processResponse(w.recvBufs[i][:w.recvSizes[i]], m, now, validate)
			}
		}
		if err != nil {
			return
		}
	}
}

// processResponse correlates one datagram against the in-flight table.
// The fast path reads only the fixed header — ID, QR, TC, RCODE —
// because full decoding costs allocations the megaQPS path cannot
// spend; Validate mode adds the full decode for smoke runs.
func (w *worker) processResponse(pkt []byte, m *blastMetrics, now int64, validate bool) {
	if len(pkt) < 12 {
		m.parseErrs.Inc()
		return
	}
	flags := binary.BigEndian.Uint16(pkt[2:])
	if flags&(1<<15) == 0 { // not a response
		m.parseErrs.Inc()
		return
	}
	if validate {
		if _, err := dnswire.Unpack(pkt); err != nil {
			m.parseErrs.Inc()
			return
		}
	}
	id := binary.BigEndian.Uint16(pkt)
	stamp := atomic.SwapInt64(&w.inflight[id], 0)
	if stamp == 0 {
		m.unmatched.Inc()
		return
	}
	m.answered.Inc()
	latUs := float64(now-stamp) / 1e3
	m.latency.Observe(latUs)
	w.sketch.Observe(latUs)
	if flags&(1<<9) != 0 {
		m.truncated.Inc()
	}
	m.rcode(dnswire.RCode(flags & 0xF)).Inc()
}

// withDefaults fills zero-value knobs.
func (cfg Config) withDefaults() Config {
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		// Enough shards that per-worker IDs cannot wrap within one
		// timeout window (see idSlots); a 1M-QPS run on few cores gets
		// extra sockets instead of corrupted accounting.
		if mw := minWorkers(cfg.QPS, cfg.Timeout); cfg.Workers < mw {
			cfg.Workers = mw
		}
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.QType == 0 {
		cfg.QType = dnswire.TypeTXT
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = time.Second
	}
	return cfg
}

// Run executes one open-loop load run and blocks until the drain
// completes. On context cancellation it shuts down cleanly — senders
// stop, receivers are unblocked, accounting still balances — and
// returns the partial Result alongside ctx.Err().
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return Result{}, errors.New("blast: no target addresses")
	}
	if len(cfg.Names) == 0 {
		return Result{}, errors.New("blast: empty query set")
	}
	if cfg.QPS <= 0 {
		return Result{}, errors.New("blast: QPS must be positive")
	}
	if outstanding := cfg.QPS / float64(cfg.Workers) * cfg.Timeout.Seconds(); outstanding >= idSlots {
		return Result{}, fmt.Errorf(
			"blast: %.0f qps over %d workers with %v timeout keeps ~%.0f queries in flight per worker, wrapping the %d-entry ID table; use >= %d workers or a shorter timeout",
			cfg.QPS, cfg.Workers, cfg.Timeout, outstanding, idSlots, minWorkers(cfg.QPS, cfg.Timeout))
	}
	batched := mmsgSupported
	switch cfg.Mode {
	case ModeBatched:
		if !mmsgSupported {
			return Result{}, errors.New("blast: batched mode unsupported on this platform")
		}
	case ModePortable:
		batched = false
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := newBlastMetrics(reg)

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		w, err := newWorker(cfg.Addrs[i%len(cfg.Addrs)], cfg, batched, cfg.Seed+int64(i))
		if err != nil {
			for _, prev := range workers[:i] {
				prev.conn.Close()
			}
			return Result{}, err
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.conn.Close()
		}
	}()

	base := time.Now()
	sendUntil := base.Add(cfg.Duration)
	drainUntil := sendUntil.Add(cfg.Timeout + 100*time.Millisecond)
	perWorker := cfg.QPS / float64(cfg.Workers)

	var senders, receivers sync.WaitGroup
	for _, w := range workers {
		w.conn.SetReadDeadline(drainUntil)
		senders.Add(1)
		receivers.Add(1)
		go func(w *worker) {
			defer senders.Done()
			w.sendLoop(ctx, m, base, sendUntil, perWorker)
		}(w)
		go func(w *worker) {
			defer receivers.Done()
			w.recvLoop(m, base, cfg.Validate)
		}(w)
	}

	// The watchdog turns a context cancel into immediate read
	// deadlines so receivers drop out of blocking reads.
	watchDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			now := time.Now()
			for _, w := range workers {
				w.conn.SetReadDeadline(now)
			}
		case <-watchDone:
		}
	}()

	var progress sync.WaitGroup
	if cfg.OnProgress != nil {
		progress.Add(1)
		go func() {
			defer progress.Done()
			runProgress(reg, m, cfg, base, watchDone)
		}()
	}

	senders.Wait()
	sendSeconds := time.Since(base).Seconds()
	if max := cfg.Duration.Seconds(); sendSeconds > max {
		sendSeconds = max
	}
	// On cancellation the watchdog has already kicked the deadlines;
	// otherwise receivers run until drainUntil.
	receivers.Wait()
	close(watchDone)
	watch.Wait()
	progress.Wait()

	// Final sweep: anything still stamped never got an answer.
	for _, w := range workers {
		for id := range w.inflight {
			if atomic.LoadInt64(&w.inflight[id]) != 0 {
				m.timeouts.Inc()
			}
		}
	}

	res := assembleResult(cfg, m, batched, sendSeconds, workers)
	return res, ctx.Err()
}

// assembleResult folds the counters and per-worker sketches into the
// final accounting.
func assembleResult(cfg Config, m *blastMetrics, batched bool, sendSeconds float64, workers []*worker) Result {
	mode := ModePortable
	if batched {
		mode = ModeBatched
	}
	res := Result{
		Mode:         mode.String(),
		Offered:      cfg.QPS,
		Workers:      cfg.Workers,
		SendSeconds:  sendSeconds,
		Sent:         m.sent.Value(),
		Answered:     m.answered.Value(),
		Timeouts:     m.timeouts.Value(),
		Unmatched:    m.unmatched.Value(),
		Truncated:    m.truncated.Value(),
		ParseErrors:  m.parseErrs.Value(),
		EncodeErrors: m.encodeErrs.Value(),
		SendErrors:   m.sendErrs.Value(),
		RCodes:       make(map[dnswire.RCode]int64),
	}
	for rc := range m.rcodes {
		if v := m.rcodes[rc].Value(); v > 0 {
			res.RCodes[dnswire.RCode(rc)] = v
		}
	}
	var all []float64
	for _, w := range workers {
		all = append(all, w.sketch.Samples()...)
	}
	sort.Float64s(all)
	res.Latency = stats.SummaryOfSorted(all)
	return res
}

// runProgress emits dashboard snapshots until the run finishes.
func runProgress(reg *obs.Registry, m *blastMetrics, cfg Config, base time.Time, done <-chan struct{}) {
	ticker := time.NewTicker(cfg.ProgressInterval)
	defer ticker.Stop()
	var prevSent, prevAns int64
	prevT := base
	for {
		select {
		case <-done:
			return
		case t := <-ticker.C:
			sent, ans := m.sent.Value(), m.answered.Value()
			dt := t.Sub(prevT).Seconds()
			if dt <= 0 {
				dt = cfg.ProgressInterval.Seconds()
			}
			hist := reg.Snapshot().Histograms["blast_latency_us"]
			cfg.OnProgress(Progress{
				Elapsed:      t.Sub(base),
				Sent:         sent,
				Answered:     ans,
				Timeouts:     m.timeouts.Value(),
				Unmatched:    m.unmatched.Value(),
				Errors:       m.parseErrs.Value() + m.encodeErrs.Value() + m.sendErrs.Value(),
				SentRate:     float64(sent-prevSent) / dt,
				AnsweredRate: float64(ans-prevAns) / dt,
				P50us:        hist.Quantile(0.50),
				P99us:        hist.Quantile(0.99),
			})
			prevSent, prevAns, prevT = sent, ans, t
		}
	}
}

// Table renders the final rcode/latency/loss accounting.
func (r Result) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mode=%s workers=%d offered=%.0f qps\n", r.Mode, r.Workers, r.Offered)
	fmt.Fprintf(&sb, "sent      %10d  (%.0f qps over %.2fs)\n", r.Sent, r.SentQPS(), r.SendSeconds)
	fmt.Fprintf(&sb, "answered  %10d  (%.0f qps, %.2f%% loss)\n", r.Answered, r.AnsweredQPS(), 100*r.LossFrac())
	fmt.Fprintf(&sb, "timeouts  %10d\n", r.Timeouts)
	if r.Unmatched > 0 {
		fmt.Fprintf(&sb, "unmatched %10d\n", r.Unmatched)
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&sb, "truncated %10d\n", r.Truncated)
	}
	if errs := r.ParseErrors + r.EncodeErrors + r.SendErrors; errs > 0 {
		fmt.Fprintf(&sb, "errors    %10d  (parse=%d encode=%d send=%d)\n",
			errs, r.ParseErrors, r.EncodeErrors, r.SendErrors)
	}
	rcs := make([]dnswire.RCode, 0, len(r.RCodes))
	for rc := range r.RCodes {
		rcs = append(rcs, rc)
	}
	sort.Slice(rcs, func(i, j int) bool { return rcs[i] < rcs[j] })
	for _, rc := range rcs {
		fmt.Fprintf(&sb, "rcode %-9s %8d\n", rc.String(), r.RCodes[rc])
	}
	if r.Latency.N() > 0 {
		fmt.Fprintf(&sb, "latency µs: p50=%.0f p90=%.0f p99=%.0f p99.9=%.0f max=%.0f (n=%d)\n",
			r.Latency.Percentile(50), r.Latency.Percentile(90), r.Latency.Percentile(99),
			r.Latency.Percentile(99.9), r.Latency.Percentile(100), r.Latency.N())
	}
	return sb.String()
}

// SweepPoint is one offered-rate step of a throughput sweep.
type SweepPoint struct {
	Offered float64
	Res     Result
}

// Sweep runs the config once per offered rate, low to high, each point
// with a private registry so counters never bleed between steps. It
// stops early on context cancellation and returns the points finished
// so far.
func Sweep(ctx context.Context, cfg Config, rates []float64, onPoint func(SweepPoint)) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, rate := range rates {
		c := cfg
		c.QPS = rate
		c.Metrics = nil
		res, err := Run(ctx, c)
		if err != nil {
			return points, err
		}
		p := SweepPoint{Offered: rate, Res: res}
		points = append(points, p)
		if onPoint != nil {
			onPoint(p)
		}
	}
	return points, nil
}

// SweepRates builds the default sweep ladder: powers of two up from
// maxQPS/2^(steps-1) to maxQPS, so the curve brackets the knee.
func SweepRates(maxQPS float64, steps int) []float64 {
	if steps <= 0 {
		steps = 6
	}
	rates := make([]float64, steps)
	for i := steps - 1; i >= 0; i-- {
		rates[i] = maxQPS
		maxQPS /= 2
	}
	return rates
}

// SweepTable renders the throughput curve as a Markdown table, the
// form BENCH.md records.
func SweepTable(points []SweepPoint) string {
	var sb strings.Builder
	sb.WriteString("| offered qps | mode | sent qps | answered qps | loss % | p50 µs | p99 µs | p99.9 µs |\n")
	sb.WriteString("|---:|---|---:|---:|---:|---:|---:|---:|\n")
	for _, p := range points {
		r := p.Res
		fmt.Fprintf(&sb, "| %.0f | %s | %.0f | %.0f | %.2f | %.0f | %.0f | %.0f |\n",
			p.Offered, r.Mode, r.SentQPS(), r.AnsweredQPS(), 100*r.LossFrac(),
			r.Latency.Percentile(50), r.Latency.Percentile(99), r.Latency.Percentile(99.9))
	}
	return sb.String()
}
