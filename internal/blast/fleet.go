package blast

import (
	"fmt"
	"strings"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// Fleet is a set of in-process authoritative servers loaded with a
// synthetic zone, the self-contained target for `ritw blast` when no
// remote address is given: the harness measures the repo's own
// serving path end to end over real loopback sockets.
type Fleet struct {
	servers []*authserver.Server
	names   []dnswire.Name
}

// FleetConfig sizes the synthetic target.
type FleetConfig struct {
	// Servers is the number of authoritative instances (default 1).
	Servers int
	// Names is the number of distinct query names in the zone
	// (default 1024) — enough spread that responses are not one hot
	// cache line, matching how a resolver population fans queries out.
	Names int
	// NXRatio adds this fraction of query-set names that do NOT exist
	// in the zone, so NXDOMAIN shows up in the rcode mix (0..1).
	NXRatio float64
	// UDPWorkers per server (default GOMAXPROCS).
	UDPWorkers int
	// ReusePort shards each server's UDP port (Linux).
	ReusePort bool
}

// fleetOrigin is the synthetic zone apex.
const fleetOrigin = "blast.test."

// SpawnFleet builds the synthetic zone, starts the servers on
// loopback, and returns the fleet. Callers must Close it.
func SpawnFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	if cfg.Names <= 0 {
		cfg.Names = 1024
	}

	var zt strings.Builder
	fmt.Fprintf(&zt, "$ORIGIN %s\n$TTL 300\n", fleetOrigin)
	zt.WriteString("@ IN SOA ns.blast.test. ops.blast.test. 1 7200 900 86400 300\n")
	zt.WriteString("@ IN NS ns.blast.test.\n")
	zt.WriteString("ns IN A 127.0.0.1\n")
	for i := 0; i < cfg.Names; i++ {
		fmt.Fprintf(&zt, "q%06d IN TXT \"payload-%06d\"\n", i, i)
	}
	z, err := zone.ParseString(zt.String(), dnswire.Root)
	if err != nil {
		return nil, fmt.Errorf("blast: synthetic zone: %w", err)
	}

	f := &Fleet{}
	for i := 0; i < cfg.Servers; i++ {
		srv := authserver.NewServer(authserver.NewEngine(authserver.Config{
			Zones:    []*zone.Zone{z},
			Identity: fmt.Sprintf("blast%d", i),
		}))
		srv.UDPWorkers = cfg.UDPWorkers
		srv.UDPReusePort = cfg.ReusePort
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			f.Close()
			return nil, fmt.Errorf("blast: fleet server %d: %w", i, err)
		}
		f.servers = append(f.servers, srv)
	}

	for i := 0; i < cfg.Names; i++ {
		f.names = append(f.names, dnswire.MustParseName(fmt.Sprintf("q%06d.%s", i, fleetOrigin)))
	}
	if cfg.NXRatio > 0 {
		nx := int(float64(cfg.Names) * cfg.NXRatio)
		for i := 0; i < nx; i++ {
			f.names = append(f.names, dnswire.MustParseName(fmt.Sprintf("missing%06d.%s", i, fleetOrigin)))
		}
	}
	return f, nil
}

// Addrs returns the servers' UDP addresses.
func (f *Fleet) Addrs() []string {
	addrs := make([]string, len(f.servers))
	for i, s := range f.servers {
		addrs[i] = s.Addr().String()
	}
	return addrs
}

// Names returns the query set (existing names first, then the
// NXDOMAIN tail when NXRatio was set).
func (f *Fleet) Names() []dnswire.Name { return f.names }

// Stats sums the engines' query counters across the fleet.
func (f *Fleet) Stats() authserver.Stats {
	var total authserver.Stats
	for _, s := range f.servers {
		st := s.Engine.Stats()
		total.Queries += st.Queries
		total.Chaos += st.Chaos
		total.Dropped += st.Dropped
	}
	return total
}

// Close shuts every server down.
func (f *Fleet) Close() {
	for _, s := range f.servers {
		s.Close()
	}
}
