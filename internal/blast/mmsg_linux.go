//go:build linux && (amd64 || arm64)

package blast

import (
	"fmt"
	"net"
	"syscall"
	"unsafe"
)

// This file is the batched I/O fast path: sendmmsg(2)/recvmmsg(2)
// move up to Batch datagrams per syscall, amortizing the user/kernel
// crossing that dominates small-packet UDP cost. The calls run inside
// syscall.RawConn Read/Write callbacks so they stay integrated with
// the Go netpoller: EAGAIN parks the goroutine until the socket is
// ready, and read deadlines set on the *net.UDPConn still fire —
// which is how the drain phase and ctx-cancel watchdog unblock the
// receive loop.

const mmsgSupported = true

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux: a
// msghdr plus the per-message transferred length, padded so an array
// strides at 8-byte alignment (64 bytes per element).
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

// mmsgIO drives one connected UDP socket with batched syscalls. The
// iovec/mmsghdr arrays are allocated once and re-pointed per batch;
// the sockaddr fields stay nil because the socket is connected.
type mmsgIO struct {
	raw      syscall.RawConn
	sendIovs []syscall.Iovec
	sendHdrs []mmsghdr
	recvIovs []syscall.Iovec
	recvHdrs []mmsghdr
}

func newMmsgIO(conn *net.UDPConn, batch int) (*mmsgIO, error) {
	raw, err := conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("blast: raw conn: %w", err)
	}
	io := &mmsgIO{
		raw:      raw,
		sendIovs: make([]syscall.Iovec, batch),
		sendHdrs: make([]mmsghdr, batch),
		recvIovs: make([]syscall.Iovec, batch),
		recvHdrs: make([]mmsghdr, batch),
	}
	for i := range io.sendHdrs {
		io.sendHdrs[i].hdr.Iov = &io.sendIovs[i]
		io.sendHdrs[i].hdr.Iovlen = 1
		io.recvHdrs[i].hdr.Iov = &io.recvIovs[i]
		io.recvHdrs[i].hdr.Iovlen = 1
	}
	return io, nil
}

func (m *mmsgIO) send(bufs [][]byte) (int, error) {
	n := len(bufs)
	for i := 0; i < n; i++ {
		m.sendIovs[i].Base = &bufs[i][0]
		m.sendIovs[i].SetLen(len(bufs[i]))
	}
	var sent int
	var opErr error
	err := m.raw.Write(func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&m.sendHdrs[0])), uintptr(n), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park on the netpoller until writable
		}
		if errno != 0 {
			opErr = errno
		} else {
			sent = int(r)
		}
		return true
	})
	if err != nil {
		return sent, err
	}
	return sent, opErr
}

func (m *mmsgIO) recv(bufs [][]byte, sizes []int) (int, error) {
	n := len(bufs)
	for i := 0; i < n; i++ {
		m.recvIovs[i].Base = &bufs[i][0]
		m.recvIovs[i].SetLen(len(bufs[i]))
	}
	var got int
	var opErr error
	err := m.raw.Read(func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&m.recvHdrs[0])), uintptr(n), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // park until readable or the read deadline fires
		}
		if errno != 0 {
			opErr = errno
		} else {
			got = int(r)
		}
		return true
	})
	for i := 0; i < got; i++ {
		sizes[i] = int(m.recvHdrs[i].msgLen)
	}
	if err != nil {
		return got, err
	}
	return got, opErr
}
