package blast

import (
	"context"
	"os"
	"testing"
	"time"
)

// blastGateFloorQPS is the answered-throughput floor for the gated
// run: a 40k-qps offered load over loopback with batched I/O must
// achieve at least this answer rate. The container sustains well over
// 100k qps on this path (see BENCH.md), so the floor trips on a real
// serving- or harness-path regression, not scheduler noise.
const blastGateFloorQPS = 20000

// TestBenchGateBlastThroughput is the CI throughput regression gate:
// the blast harness drives the in-process fleet at a fixed offered
// rate and the achieved answer rate must clear the checked-in floor.
// Gated behind RITW_BENCH_GATE=1 like the other bench gates — wall
// clock throughput is load-sensitive, so it only runs on the dedicated
// CI step.
func TestBenchGateBlastThroughput(t *testing.T) {
	if os.Getenv("RITW_BENCH_GATE") == "" {
		t.Skip("set RITW_BENCH_GATE=1 to run the bench regression gate")
	}
	fleet, err := SpawnFleet(FleetConfig{Names: 1024, ReusePort: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	res, err := Run(context.Background(), Config{
		Addrs:    fleet.Addrs(),
		QPS:      40000,
		Duration: 3 * time.Second,
		Names:    fleet.Names(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mode=%s offered=40000 sent=%.0f answered=%.0f qps, loss=%.2f%%, p99=%.0fµs",
		res.Mode, res.SentQPS(), res.AnsweredQPS(), 100*res.LossFrac(),
		res.Latency.Percentile(99))
	if res.Sent != res.Answered+res.Timeouts {
		t.Fatalf("accounting: %+v", res)
	}
	if got := res.AnsweredQPS(); got < blastGateFloorQPS {
		t.Errorf("answered %.0f qps, floor %d", got, blastGateFloorQPS)
	}
}
