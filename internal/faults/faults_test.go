package faults

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestScheduleValidation is the table covering the window edge cases
// the old measure.Outage validation only partially caught: zero-length
// and inverted windows, negative starts, out-of-range rates, and
// overlapping down windows for the same site (including overlaps that
// only appear once a flap is expanded into cycles).
func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name    string
		sched   Schedule
		wantErr string // substring; empty means valid
	}{
		{
			name: "valid single outage",
			sched: Schedule{Outages: []Outage{
				{Site: "FRA", Start: 20 * time.Minute, End: 40 * time.Minute},
			}},
		},
		{
			name: "valid overlapping outages on different sites",
			sched: Schedule{Outages: []Outage{
				{Site: "FRA", Start: 10 * time.Minute, End: 30 * time.Minute},
				{Site: "SYD", Start: 20 * time.Minute, End: 50 * time.Minute},
			}},
		},
		{
			name: "valid back-to-back windows same site",
			sched: Schedule{Outages: []Outage{
				{Site: "FRA", Start: 10 * time.Minute, End: 20 * time.Minute},
				{Site: "FRA", Start: 20 * time.Minute, End: 30 * time.Minute},
			}},
		},
		{
			name: "zero-length outage",
			sched: Schedule{Outages: []Outage{
				{Site: "FRA", Start: 20 * time.Minute, End: 20 * time.Minute},
			}},
			wantErr: "is empty",
		},
		{
			name: "inverted outage",
			sched: Schedule{Outages: []Outage{
				{Site: "FRA", Start: 40 * time.Minute, End: 20 * time.Minute},
			}},
			wantErr: "is empty",
		},
		{
			name: "negative start",
			sched: Schedule{Outages: []Outage{
				{Site: "FRA", Start: -time.Minute, End: 20 * time.Minute},
			}},
			wantErr: "negative time",
		},
		{
			name: "overlapping outages same site",
			sched: Schedule{Outages: []Outage{
				{Site: "FRA", Start: 10 * time.Minute, End: 30 * time.Minute},
				{Site: "FRA", Start: 25 * time.Minute, End: 40 * time.Minute},
			}},
			wantErr: "overlapping down windows",
		},
		{
			name: "flap cycle overlaps outage same site",
			sched: Schedule{
				Outages: []Outage{{Site: "FRA", Start: 12 * time.Minute, End: 14 * time.Minute}},
				Flaps: []Flap{{
					Site: "FRA", Start: 0, End: 30 * time.Minute,
					Period: 10 * time.Minute, DownFrac: 0.5,
				}},
			},
			wantErr: "overlapping down windows",
		},
		{
			name: "valid flap interleaves outage same site",
			sched: Schedule{
				// Flap is down [0,5) [10,15) [20,25); outage fits the gap.
				Outages: []Outage{{Site: "FRA", Start: 6 * time.Minute, End: 9 * time.Minute}},
				Flaps: []Flap{{
					Site: "FRA", Start: 0, End: 30 * time.Minute,
					Period: 10 * time.Minute, DownFrac: 0.5,
				}},
			},
		},
		{
			name: "flap zero period",
			sched: Schedule{Flaps: []Flap{{
				Site: "FRA", Start: 0, End: 30 * time.Minute, DownFrac: 0.5,
			}}},
			wantErr: "non-positive period",
		},
		{
			name: "flap down-fraction above one",
			sched: Schedule{Flaps: []Flap{{
				Site: "FRA", Start: 0, End: 30 * time.Minute,
				Period: 10 * time.Minute, DownFrac: 1.5,
			}}},
			wantErr: "down-fraction",
		},
		{
			name: "zero-length flap envelope",
			sched: Schedule{Flaps: []Flap{{
				Site: "FRA", Start: 10 * time.Minute, End: 10 * time.Minute,
				Period: time.Minute, DownFrac: 0.5,
			}}},
			wantErr: "is empty",
		},
		{
			name: "burst rate zero",
			sched: Schedule{Bursts: []LossBurst{{
				Site: "FRA", Start: 0, End: time.Minute,
			}}},
			wantErr: "rate",
		},
		{
			name: "burst rate above one",
			sched: Schedule{Bursts: []LossBurst{{
				Site: "FRA", Start: 0, End: time.Minute, Rate: 1.2,
			}}},
			wantErr: "rate",
		},
		{
			name: "burst fraction out of range",
			sched: Schedule{Bursts: []LossBurst{{
				Site: "FRA", Start: 0, End: time.Minute, Rate: 0.5, Fraction: -0.1,
			}}},
			wantErr: "fraction",
		},
		{
			name: "zero-length burst",
			sched: Schedule{Bursts: []LossBurst{{
				Site: "FRA", Start: time.Minute, End: time.Minute, Rate: 0.5,
			}}},
			wantErr: "is empty",
		},
		{
			name: "slowdown no-op",
			sched: Schedule{Slowdowns: []Slowdown{{
				Site: "FRA", Start: 0, End: time.Minute,
			}}},
			wantErr: "no-op",
		},
		{
			name: "slowdown negative add",
			sched: Schedule{Slowdowns: []Slowdown{{
				Site: "FRA", Start: 0, End: time.Minute, AddRTT: -time.Millisecond,
			}}},
			wantErr: "negative RTT",
		},
		{
			name: "valid slowdown factor only",
			sched: Schedule{Slowdowns: []Slowdown{{
				Site: "FRA", Start: 0, End: time.Minute, Factor: 3,
			}}},
		},
		{
			name: "partition fraction zero",
			sched: Schedule{Partitions: []Partition{{
				Site: "FRA", Start: 0, End: time.Minute,
			}}},
			wantErr: "fraction",
		},
		{
			name: "zero-length partition",
			sched: Schedule{Partitions: []Partition{{
				Site: "FRA", Start: time.Minute, End: time.Minute, Fraction: 0.5,
			}}},
			wantErr: "is empty",
		},
		{
			// An exact duplicate is the degenerate overlap: same site,
			// same window, twice. Must be rejected, not merged.
			name: "duplicate outage same site",
			sched: Schedule{Outages: []Outage{
				{Site: "FRA", Start: 10 * time.Minute, End: 30 * time.Minute},
				{Site: "FRA", Start: 10 * time.Minute, End: 30 * time.Minute},
			}},
			wantErr: "overlapping down windows",
		},
		{
			name: "duplicate flaps same site",
			sched: Schedule{Flaps: []Flap{
				{Site: "FRA", Start: 0, End: 30 * time.Minute, Period: 10 * time.Minute, DownFrac: 0.5},
				{Site: "FRA", Start: 0, End: 30 * time.Minute, Period: 10 * time.Minute, DownFrac: 0.5},
			}},
			wantErr: "overlapping down windows",
		},
		{
			// Flap down cycles are [0,5) [10,15) [20,25); the outage
			// touches two of them at both boundaries. Half-open windows
			// make touching legal — only true overlap is a bug.
			name: "outage touches flap cycles on both ends",
			sched: Schedule{
				Outages: []Outage{{Site: "FRA", Start: 5 * time.Minute, End: 10 * time.Minute}},
				Flaps: []Flap{{
					Site: "FRA", Start: 0, End: 30 * time.Minute,
					Period: 10 * time.Minute, DownFrac: 0.5,
				}},
			},
		},
		{
			// A period longer than the envelope yields a single cycle
			// clipped to the envelope — unusual but well-defined, so it
			// validates.
			name: "flap period longer than envelope",
			sched: Schedule{Flaps: []Flap{{
				Site: "FRA", Start: 0, End: 30 * time.Minute,
				Period: 40 * time.Minute, DownFrac: 0.5,
			}}},
		},
		{
			// DownFrac 1 makes back-to-back down cycles: each ends where
			// the next starts. That is a continuous outage spelled as a
			// flap, not an overlap.
			name: "flap fully down is touching cycles",
			sched: Schedule{Flaps: []Flap{{
				Site: "FRA", Start: 0, End: 30 * time.Minute,
				Period: 10 * time.Minute, DownFrac: 1.0,
			}}},
		},
		{
			// ...but a second fault inside that span must still be
			// caught as overlapping.
			name: "outage inside fully-down flap",
			sched: Schedule{
				Outages: []Outage{{Site: "FRA", Start: 12 * time.Minute, End: 13 * time.Minute}},
				Flaps: []Flap{{
					Site: "FRA", Start: 0, End: 30 * time.Minute,
					Period: 10 * time.Minute, DownFrac: 1.0,
				}},
			},
			wantErr: "overlapping down windows",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sched.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestFlapCycleClipping pins the expansion geometry behind the
// validation: the last down cycle of a flap is clipped to the
// envelope, and a period longer than the envelope degenerates to one
// clipped cycle instead of escaping it.
func TestFlapCycleClipping(t *testing.T) {
	s := Schedule{Flaps: []Flap{{
		// Cycles start at 0, 10, 20; down length 8 min, so the last
		// would run to 28 but the envelope ends at 25.
		Site: "FRA", Start: 0, End: 25 * time.Minute,
		Period: 10 * time.Minute, DownFrac: 0.8,
	}}}
	want := []window{
		{0, 8 * time.Minute},
		{10 * time.Minute, 18 * time.Minute},
		{20 * time.Minute, 25 * time.Minute},
	}
	if got := s.downWindows()["FRA"]; !reflect.DeepEqual(got, want) {
		t.Errorf("clipped cycles = %v, want %v", got, want)
	}

	long := Schedule{Flaps: []Flap{{
		Site: "FRA", Start: 5 * time.Minute, End: 30 * time.Minute,
		Period: time.Hour, DownFrac: 0.9,
	}}}
	want = []window{{5 * time.Minute, 30 * time.Minute}}
	if got := long.downWindows()["FRA"]; !reflect.DeepEqual(got, want) {
		t.Errorf("over-long period cycles = %v, want %v", got, want)
	}
}

func TestNilScheduleIsValidAndEmpty(t *testing.T) {
	var s *Schedule
	if err := s.Validate(); err != nil {
		t.Fatalf("nil schedule Validate() = %v", err)
	}
	if !s.Empty() {
		t.Fatal("nil schedule should be Empty")
	}
	if got := s.EventWindows(); got != nil {
		t.Fatalf("nil schedule EventWindows() = %v", got)
	}
}

func TestTransitionsExpandFlaps(t *testing.T) {
	s := Schedule{
		Flaps: []Flap{{
			Site: "GRU", Start: 10 * time.Minute, End: 25 * time.Minute,
			Period: 10 * time.Minute, DownFrac: 0.3,
		}},
	}
	// Cycles: down [10,13), up; down [20,23), up.
	want := []Transition{
		{Site: "GRU", At: 10 * time.Minute, Down: true},
		{Site: "GRU", At: 13 * time.Minute, Down: false},
		{Site: "GRU", At: 20 * time.Minute, Down: true},
		{Site: "GRU", At: 23 * time.Minute, Down: false},
	}
	if got := s.Transitions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Transitions() = %v, want %v", got, want)
	}
}

func testBindings() Bindings {
	return Bindings{
		SiteAddr: map[string]netip.Addr{
			"FRA": netip.MustParseAddr("10.0.0.1"),
			"SYD": netip.MustParseAddr("10.0.0.2"),
		},
		Resolvers: []netip.Addr{
			netip.MustParseAddr("10.1.0.1"),
			netip.MustParseAddr("10.1.0.2"),
			netip.MustParseAddr("10.1.0.3"),
			netip.MustParseAddr("10.1.0.4"),
		},
	}
}

func TestCompileRejectsUnknownSite(t *testing.T) {
	s := &Schedule{Outages: []Outage{{Site: "LHR", Start: 0, End: time.Minute}}}
	if _, err := Compile(s, testBindings(), 1); err == nil || !strings.Contains(err.Error(), "unknown site") {
		t.Fatalf("Compile() error = %v, want unknown site", err)
	}
}

func TestInjectorOutageDropsBothDirections(t *testing.T) {
	b := testBindings()
	fra := b.SiteAddr["FRA"]
	res := b.Resolvers[0]
	s := &Schedule{Outages: []Outage{{Site: "FRA", Start: 10 * time.Minute, End: 20 * time.Minute}}}
	inj, err := Compile(s, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Drop(res, fra, 5*time.Minute) {
		t.Fatal("packet before window should pass")
	}
	if !inj.Drop(res, fra, 10*time.Minute) {
		t.Fatal("packet to down site should drop")
	}
	if !inj.Drop(fra, res, 15*time.Minute) {
		t.Fatal("packet from down site should drop")
	}
	if inj.Drop(res, fra, 20*time.Minute) {
		t.Fatal("packet at window end should pass (half-open)")
	}
	rep := inj.Report()
	if rep.Drops != 2 {
		t.Fatalf("Drops = %d, want 2", rep.Drops)
	}
	if got := rep.Cut["FRA"]; len(got) == 0 {
		t.Fatal("cut timeline for FRA is empty")
	}
}

func TestInjectorPartitionSplitsResolvers(t *testing.T) {
	b := testBindings()
	fra := b.SiteAddr["FRA"]
	s := &Schedule{Partitions: []Partition{{
		Site: "FRA", Start: 0, End: time.Hour, Fraction: 0.5,
	}}}
	inj, err := Compile(s, b, 7)
	if err != nil {
		t.Fatal(err)
	}
	cut, kept := 0, 0
	for _, r := range b.Resolvers {
		if inj.Drop(r, fra, 30*time.Minute) {
			cut++
		} else {
			kept++
		}
	}
	if cut == 0 || kept == 0 {
		t.Fatalf("partition should split resolvers, got cut=%d kept=%d", cut, kept)
	}
	// Other site unaffected.
	if inj.Drop(b.Resolvers[0], b.SiteAddr["SYD"], 30*time.Minute) {
		t.Fatal("partition must not affect other sites")
	}
	// Deterministic: recompiling with the same seed cuts the same set.
	inj2, err := Compile(s, b, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Resolvers {
		if inj.Drop(r, fra, 31*time.Minute) != inj2.Drop(r, fra, 31*time.Minute) {
			t.Fatal("partition membership must be deterministic for a seed")
		}
	}
}

func TestInjectorFullPartitionSparesNonResolvers(t *testing.T) {
	b := testBindings()
	fra := b.SiteAddr["FRA"]
	s := &Schedule{Partitions: []Partition{{
		Site: "FRA", Start: 0, End: time.Hour, Fraction: 1,
	}}}
	inj, err := Compile(s, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Resolvers {
		if !inj.Drop(r, fra, time.Minute) {
			t.Fatal("full partition should cut every resolver")
		}
	}
	probe := netip.MustParseAddr("10.9.0.1")
	if inj.Drop(probe, fra, time.Minute) {
		t.Fatal("partition must not cut non-resolver peers")
	}
}

func TestInjectorLossBurstIsApproximateAndSeeded(t *testing.T) {
	b := testBindings()
	fra := b.SiteAddr["FRA"]
	res := b.Resolvers[1]
	s := &Schedule{Bursts: []LossBurst{{
		Site: "FRA", Start: 0, End: time.Hour, Rate: 0.3,
	}}}
	run := func(seed int64) int {
		inj, err := Compile(s, b, seed)
		if err != nil {
			t.Fatal(err)
		}
		drops := 0
		for i := 0; i < 10000; i++ {
			if inj.Drop(res, fra, time.Minute) {
				drops++
			}
		}
		return drops
	}
	d1 := run(11)
	if d1 < 2700 || d1 > 3300 {
		t.Fatalf("burst at rate 0.3 dropped %d/10000", d1)
	}
	if d2 := run(11); d2 != d1 {
		t.Fatalf("same seed gave different burst outcomes: %d vs %d", d1, d2)
	}
}

func TestInjectorShape(t *testing.T) {
	b := testBindings()
	fra := b.SiteAddr["FRA"]
	res := b.Resolvers[2]
	s := &Schedule{Slowdowns: []Slowdown{{
		Site: "FRA", Start: 0, End: time.Hour,
		AddRTT: 100 * time.Millisecond, Factor: 2,
	}}}
	inj, err := Compile(s, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := inj.Shape(res, fra, time.Minute, 20*time.Millisecond)
	if want := 90 * time.Millisecond; got != want { // 20*2 + 100/2
		t.Fatalf("Shape = %v, want %v", got, want)
	}
	// Outside the window and off-path: untouched.
	if got := inj.Shape(res, fra, 2*time.Hour, 20*time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("Shape outside window = %v", got)
	}
	if got := inj.Shape(res, b.SiteAddr["SYD"], time.Minute, 20*time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("Shape off-path = %v", got)
	}
	if rep := inj.Report(); rep.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", rep.Delayed)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	a := netip.MustParseAddr("10.0.0.1")
	if inj.Drop(a, a, 0) {
		t.Fatal("nil injector must not drop")
	}
	if got := inj.Shape(a, a, 0, time.Millisecond); got != time.Millisecond {
		t.Fatalf("nil injector Shape = %v", got)
	}
	if inj.Report() != nil {
		t.Fatal("nil injector Report should be nil")
	}
}
