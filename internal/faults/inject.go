package faults

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"ritw/internal/obs"
)

// Bindings ties a declarative Schedule to one concrete simulated
// topology: which address each site answers on, and which addresses
// are the recursive resolvers a partial fault may select among.
type Bindings struct {
	// SiteAddr maps airport codes to the site's concrete host address.
	SiteAddr map[string]netip.Addr
	// Resolvers lists the recursive resolver host addresses; partial
	// faults (Fraction < 1) pick deterministic subsets of these.
	Resolvers []netip.Addr
}

// DefaultReportBucket is the cut-timeline bucket width when the
// schedule does not set one.
const DefaultReportBucket = 5 * time.Minute

// Injector is a compiled Schedule: the per-packet oracle netsim
// consults. All decisions derive from the schedule, the bindings and
// the seed, so a run replays identically. It is used from the single
// simulator goroutine and is not safe for concurrent use.
type Injector struct {
	bucket time.Duration
	// siteOf maps concrete site addresses back to airport codes.
	siteOf map[netip.Addr]string
	// downBy holds merged sorted down windows per site address.
	downBy map[netip.Addr][]window

	bursts []compiledBurst
	slows  []compiledSlow
	parts  []compiledPart

	rng *rand.Rand

	// Keyed mode (UseKeyedRand): burst loss draws derive from
	// (seed, burst, src, dst, consult counter) instead of the shared
	// sequential rng, so a packet's fate is independent of what other
	// pairs' packets drew before it. Sharded runs require this — each
	// shard compiles its own injector, and only keyed draws make the
	// per-shard streams line up with the sequential run.
	keyed     bool
	keyedSeed uint64
	consult   map[burstKey]uint64

	cut         map[string][]int64 // per-site per-bucket fault drops
	drops       int64
	delayed     int64
	transitions []Transition

	mDrops   *obs.Counter
	mDelayed *obs.Counter
}

type compiledBurst struct {
	site     string
	addr     netip.Addr
	win      window
	rate     float64
	affected map[netip.Addr]bool // nil = all peers
}

type compiledSlow struct {
	site     string
	addr     netip.Addr
	win      window
	addOne   time.Duration // AddRTT/2: the one-way share
	factor   float64
	affected map[netip.Addr]bool
}

type compiledPart struct {
	site     string
	addr     netip.Addr
	win      window
	affected map[netip.Addr]bool // never nil: partitions are partial
}

// Compile validates the schedule and binds it to concrete addresses.
// Every referenced site must appear in b.SiteAddr. The seed feeds both
// the loss-burst sampler and the deterministic subset selection, and
// must be distinct from the RNG streams netsim itself consumes so a
// fault-free schedule leaves those streams untouched.
func Compile(s *Schedule, b Bindings, seed int64) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		bucket: DefaultReportBucket,
		siteOf: make(map[netip.Addr]string),
		downBy: make(map[netip.Addr][]window),
		rng:    rand.New(rand.NewSource(seed)),
		cut:    make(map[string][]int64),
	}
	if s == nil {
		return inj, nil
	}
	if s.ReportBucket > 0 {
		inj.bucket = s.ReportBucket
	}
	resolve := func(kind, site string) (netip.Addr, error) {
		addr, ok := b.SiteAddr[site]
		if !ok {
			return netip.Addr{}, fmt.Errorf("faults: %s references unknown site %q", kind, site)
		}
		inj.siteOf[addr] = site
		return addr, nil
	}
	for site, wins := range s.downWindows() {
		addr, err := resolve("down window", site)
		if err != nil {
			return nil, err
		}
		inj.downBy[addr] = wins
	}
	for i, bu := range s.Bursts {
		addr, err := resolve("loss burst", bu.Site)
		if err != nil {
			return nil, err
		}
		inj.bursts = append(inj.bursts, compiledBurst{
			site: bu.Site, addr: addr, win: window{bu.Start, bu.End},
			rate:     bu.Rate,
			affected: subset(b.Resolvers, bu.Fraction, seed, "burst", i),
		})
	}
	for i, sl := range s.Slowdowns {
		addr, err := resolve("slowdown", sl.Site)
		if err != nil {
			return nil, err
		}
		factor := sl.Factor
		if factor == 0 {
			factor = 1
		}
		inj.slows = append(inj.slows, compiledSlow{
			site: sl.Site, addr: addr, win: window{sl.Start, sl.End},
			addOne: sl.AddRTT / 2, factor: factor,
			affected: subset(b.Resolvers, sl.Fraction, seed, "slow", i),
		})
	}
	for i, p := range s.Partitions {
		addr, err := resolve("partition", p.Site)
		if err != nil {
			return nil, err
		}
		aff := subset(b.Resolvers, p.Fraction, seed, "part", i)
		if aff == nil {
			// Fraction == 1: partition from every resolver. Keep an
			// explicit (possibly empty) set so probes and other
			// non-resolver peers still reach the site.
			aff = make(map[netip.Addr]bool, len(b.Resolvers))
			for _, r := range b.Resolvers {
				aff[r] = true
			}
		}
		inj.parts = append(inj.parts, compiledPart{
			site: p.Site, addr: addr, win: window{p.Start, p.End}, affected: aff,
		})
	}
	inj.transitions = s.Transitions()
	return inj, nil
}

// subset deterministically picks ~frac of the resolver addresses by
// hashing each address with a per-fault salt: membership depends only
// on (seed, fault identity, address), never on slice order. frac 0 or
// 1 returns nil, meaning "all peers".
func subset(resolvers []netip.Addr, frac float64, seed int64, kind string, idx int) map[netip.Addr]bool {
	if frac <= 0 || frac >= 1 {
		return nil
	}
	out := make(map[netip.Addr]bool)
	for _, r := range resolvers {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s/%d/%s", seed, kind, idx, r)
		// FNV's high bits barely change for inputs differing only in the
		// trailing address byte; finalize with a splitmix64-style mixer
		// before thresholding on the top bits.
		if float64(mix64(h.Sum64()))/float64(math.MaxUint64) < frac {
			out[r] = true
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer: full-avalanche bit mixing.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// burstKey identifies one burst's consult stream for one directional
// packet pair. Exact addresses (not hashes) key the counter map so a
// hash collision can never desync sharded and sequential runs.
type burstKey struct {
	idx      int
	src, dst netip.Addr
}

// UseKeyedRand switches the injector's loss-burst sampling to keyed
// draws under seed. The n-th consult of burst i for packets src→dst
// always sees the same uniform variate, regardless of the order other
// pairs consult the injector — the property that lets each shard
// compile its own injector and still match the sequential run. Call
// before the first packet flows.
func (inj *Injector) UseKeyedRand(seed uint64) {
	inj.keyed = true
	inj.keyedSeed = seed
	if inj.consult == nil {
		inj.consult = make(map[burstKey]uint64)
	}
}

// addrBits folds an address into 64 bits for key derivation.
func addrBits(a netip.Addr) uint64 {
	if a.Is4() {
		b := a.As4()
		return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	}
	b := a.As16()
	var h uint64
	for _, x := range b {
		h = mix64(h ^ uint64(x))
	}
	return h
}

// burstDraw returns the uniform [0,1) variate for the next consult of
// burst i on the path src→dst.
func (inj *Injector) burstDraw(i int, src, dst netip.Addr) float64 {
	k := burstKey{i, src, dst}
	n := inj.consult[k]
	inj.consult[k] = n + 1
	h := mix64(inj.keyedSeed ^ 0x5851f42d4c957f2d ^ uint64(i)<<32)
	h = mix64(h ^ addrBits(src))
	h = mix64(h ^ addrBits(dst))
	return float64(mix64(h^n)) / float64(math.MaxUint64)
}

// SetMetrics attaches fault counters to reg. Pass nil to detach.
func (inj *Injector) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		inj.mDrops, inj.mDelayed = nil, nil
		return
	}
	inj.mDrops = reg.Counter("faults_drops_total")
	inj.mDelayed = reg.Counter("faults_delayed_total")
}

// downAt reports whether the site at addr is inside a down window.
func (inj *Injector) downAt(addr netip.Addr, now time.Duration) (string, bool) {
	wins := inj.downBy[addr]
	for _, w := range wins {
		if w.contains(now) {
			return inj.siteOf[addr], true
		}
		if w.start > now {
			break // windows are sorted
		}
	}
	return "", false
}

// affects reports whether a compiled path fault applies to the packet
// (src, dst) at time now, given the fault's site address and affected
// peer set.
func pathMatch(siteAddr netip.Addr, affected map[netip.Addr]bool, win window, src, dst netip.Addr, now time.Duration) bool {
	if !win.contains(now) {
		return false
	}
	var peer netip.Addr
	switch {
	case dst == siteAddr:
		peer = src
	case src == siteAddr:
		peer = dst
	default:
		return false
	}
	return affected == nil || affected[peer]
}

// Drop decides whether the packet (src → dst, at virtual time now)
// dies to a scheduled fault. Down windows and partitions cut
// deterministically; loss bursts sample the injector's own RNG so the
// network's streams stay untouched.
func (inj *Injector) Drop(src, dst netip.Addr, now time.Duration) bool {
	if inj == nil {
		return false
	}
	if site, down := inj.downAt(dst, now); down {
		inj.recordCut(site, now)
		return true
	}
	if site, down := inj.downAt(src, now); down {
		inj.recordCut(site, now)
		return true
	}
	for i := range inj.parts {
		p := &inj.parts[i]
		if pathMatch(p.addr, p.affected, p.win, src, dst, now) {
			inj.recordCut(p.site, now)
			return true
		}
	}
	for i := range inj.bursts {
		b := &inj.bursts[i]
		if !pathMatch(b.addr, b.affected, b.win, src, dst, now) {
			continue
		}
		var u float64
		if inj.keyed {
			u = inj.burstDraw(i, src, dst)
		} else {
			u = inj.rng.Float64()
		}
		if u < b.rate {
			inj.recordCut(b.site, now)
			return true
		}
	}
	return false
}

// Shape returns the (possibly inflated) one-way delay for a packet
// that survived Drop. Multiple matching slowdowns compound.
func (inj *Injector) Shape(src, dst netip.Addr, now, oneWay time.Duration) time.Duration {
	if inj == nil || len(inj.slows) == 0 {
		return oneWay
	}
	shaped := false
	for i := range inj.slows {
		sl := &inj.slows[i]
		if pathMatch(sl.addr, sl.affected, sl.win, src, dst, now) {
			oneWay = time.Duration(float64(oneWay)*sl.factor) + sl.addOne
			shaped = true
		}
	}
	if shaped {
		inj.delayed++
		inj.mDelayed.Inc()
	}
	return oneWay
}

func (inj *Injector) recordCut(site string, now time.Duration) {
	inj.drops++
	inj.mDrops.Inc()
	idx := int(now / inj.bucket)
	tl := inj.cut[site]
	for len(tl) <= idx {
		tl = append(tl, 0)
	}
	tl[idx]++
	inj.cut[site] = tl
}

// Report is the injector's post-run account: how many packets each
// fault family consumed, and the per-site timeline of cut traffic.
// The timeline is the direct evidence for backoff working — with
// hold-down, the cut counts to a dead site decay bucket over bucket
// instead of holding at the retry plateau.
type Report struct {
	// Bucket is the timeline bucket width.
	Bucket time.Duration
	// Cut counts fault-dropped packets per site per bucket.
	Cut map[string][]int64
	// Drops is the total packets removed by faults.
	Drops int64
	// Delayed is the number of packets whose latency a slowdown shaped.
	Delayed int64
	// Transitions are the schedule's down/up edges, sorted by time.
	Transitions []Transition
}

// Report snapshots the injector's counters. Call it after the run.
func (inj *Injector) Report() *Report {
	if inj == nil {
		return nil
	}
	r := &Report{
		Bucket:      inj.bucket,
		Cut:         make(map[string][]int64, len(inj.cut)),
		Drops:       inj.drops,
		Delayed:     inj.delayed,
		Transitions: append([]Transition(nil), inj.transitions...),
	}
	for site, tl := range inj.cut {
		r.Cut[site] = append([]int64(nil), tl...)
	}
	return r
}

// MergeReports combines per-shard injector reports into the account a
// single sequential injector would have produced: drop and delay
// totals sum, cut timelines add element-wise, and the schedule-derived
// transitions (identical in every shard) are kept once. Nil reports
// are skipped; all-nil input returns nil.
func MergeReports(reports ...*Report) *Report {
	var out *Report
	for _, r := range reports {
		if r == nil {
			continue
		}
		if out == nil {
			out = &Report{
				Bucket:      r.Bucket,
				Cut:         make(map[string][]int64),
				Transitions: append([]Transition(nil), r.Transitions...),
			}
		}
		out.Drops += r.Drops
		out.Delayed += r.Delayed
		for site, tl := range r.Cut {
			dst := out.Cut[site]
			for len(dst) < len(tl) {
				dst = append(dst, 0)
			}
			for i, v := range tl {
				dst[i] += v
			}
			out.Cut[site] = dst
		}
	}
	return out
}
