// Package faults is the deterministic fault-schedule layer behind
// every robustness experiment: a declarative Schedule of site outages,
// up/down flapping, time-windowed loss bursts, latency inflation and
// partial partitions, compiled into an Injector that the network
// simulator consults on every packet. The same seed and schedule
// always reproduce the same packet fate sequence, so failure datasets
// are as replayable as healthy ones.
//
// The paper's §7 resilience argument — multiple authoritatives and
// anycast exist so recursives can route around failures — needs more
// than the single one-shot outage the original reproduction modelled.
// NXNSAttack-style retry amplification, catchment shifts under flap,
// and asymmetric reachability all require overlapping, windowed,
// per-path fault primitives, which is what this package provides.
package faults

import (
	"fmt"
	"sort"
	"time"
)

// Outage takes one authoritative site fully down for [Start, End):
// every packet to or from the site vanishes at the network layer.
type Outage struct {
	// Site is the airport code of the failing authoritative.
	Site string
	// Start and End bound the failure in virtual time from run start.
	Start, End time.Duration
}

// Flap cycles a site between down and up within [Start, End): each
// Period begins with Period*DownFrac of downtime followed by uptime.
// It models the pathological BGP/etc. instability between a clean
// outage and a healthy site.
type Flap struct {
	Site       string
	Start, End time.Duration
	// Period is the length of one down/up cycle.
	Period time.Duration
	// DownFrac is the fraction of each period spent down, in (0, 1].
	DownFrac float64
}

// LossBurst adds packet loss on the paths between a site and (a subset
// of) the resolvers for [Start, End).
type LossBurst struct {
	Site       string
	Start, End time.Duration
	// Rate is the extra per-packet loss probability, in (0, 1].
	Rate float64
	// Fraction selects how many resolvers the burst affects: 0 means
	// every resolver, otherwise a deterministic Fraction-sized subset.
	Fraction float64
}

// Slowdown inflates latency between a site and (a subset of) the
// resolvers for [Start, End): each one-way delay becomes
// delay*Factor + AddRTT/2.
type Slowdown struct {
	Site       string
	Start, End time.Duration
	// AddRTT is added round-trip time; each direction pays half.
	AddRTT time.Duration
	// Factor multiplies the base delay (0 means 1: no scaling).
	Factor float64
	// Fraction selects affected resolvers (0 = all), like LossBurst.
	Fraction float64
}

// Partition makes a site unreachable for a deterministic subset of the
// resolvers during [Start, End) while the rest keep serving through it
// — the split-brain view where some recursives see a site as dead and
// others do not.
type Partition struct {
	Site       string
	Start, End time.Duration
	// Fraction of resolvers that lose the site, in (0, 1].
	Fraction float64
}

// Schedule is a declarative set of faults for one run. The zero value
// is an empty schedule (no faults). Schedules are pure data: Compile
// binds them to concrete addresses and a seed.
type Schedule struct {
	Outages    []Outage
	Flaps      []Flap
	Bursts     []LossBurst
	Slowdowns  []Slowdown
	Partitions []Partition
	// ReportBucket is the bucket width of the per-site cut timeline in
	// the run report (default 5 minutes).
	ReportBucket time.Duration
}

// Empty reports whether the schedule declares no faults at all.
func (s *Schedule) Empty() bool {
	return s == nil || len(s.Outages)+len(s.Flaps)+len(s.Bursts)+
		len(s.Slowdowns)+len(s.Partitions) == 0
}

// window is one half-open [start, end) interval.
type window struct{ start, end time.Duration }

func (w window) contains(t time.Duration) bool { return t >= w.start && t < w.end }

// checkWindow validates one fault's time bounds. Zero-length and
// inverted windows are configuration errors, not no-ops: a schedule
// that silently did nothing cost a debugging afternoon once.
func checkWindow(kind, site string, start, end time.Duration) error {
	if start < 0 {
		return fmt.Errorf("faults: %s %s starts at negative time %v", kind, site, start)
	}
	if end <= start {
		return fmt.Errorf("faults: %s %s window [%v, %v) is empty", kind, site, start, end)
	}
	return nil
}

// Validate checks the schedule's internal consistency: windows must be
// non-empty and non-negative, rates and fractions in range, and the
// down windows of any one site (outages plus expanded flap cycles)
// must not overlap — overlapping downtime for the same site is almost
// always a schedule bug, and its recovery time would be ambiguous.
// Down windows of different sites may overlap freely; that is the
// multi-site failure case the subsystem exists for.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for _, o := range s.Outages {
		if err := checkWindow("outage", o.Site, o.Start, o.End); err != nil {
			return err
		}
	}
	for _, f := range s.Flaps {
		if err := checkWindow("flap", f.Site, f.Start, f.End); err != nil {
			return err
		}
		if f.Period <= 0 {
			return fmt.Errorf("faults: flap %s has non-positive period %v", f.Site, f.Period)
		}
		if f.DownFrac <= 0 || f.DownFrac > 1 {
			return fmt.Errorf("faults: flap %s down-fraction %v outside (0, 1]", f.Site, f.DownFrac)
		}
	}
	for _, b := range s.Bursts {
		if err := checkWindow("loss burst", b.Site, b.Start, b.End); err != nil {
			return err
		}
		if b.Rate <= 0 || b.Rate > 1 {
			return fmt.Errorf("faults: loss burst %s rate %v outside (0, 1]", b.Site, b.Rate)
		}
		if b.Fraction < 0 || b.Fraction > 1 {
			return fmt.Errorf("faults: loss burst %s fraction %v outside [0, 1]", b.Site, b.Fraction)
		}
	}
	for _, sl := range s.Slowdowns {
		if err := checkWindow("slowdown", sl.Site, sl.Start, sl.End); err != nil {
			return err
		}
		if sl.AddRTT < 0 {
			return fmt.Errorf("faults: slowdown %s adds negative RTT %v", sl.Site, sl.AddRTT)
		}
		if sl.Factor < 0 {
			return fmt.Errorf("faults: slowdown %s has negative factor %v", sl.Site, sl.Factor)
		}
		if sl.AddRTT == 0 && (sl.Factor == 0 || sl.Factor == 1) {
			return fmt.Errorf("faults: slowdown %s is a no-op (no added RTT, factor %v)", sl.Site, sl.Factor)
		}
		if sl.Fraction < 0 || sl.Fraction > 1 {
			return fmt.Errorf("faults: slowdown %s fraction %v outside [0, 1]", sl.Site, sl.Fraction)
		}
	}
	for _, p := range s.Partitions {
		if err := checkWindow("partition", p.Site, p.Start, p.End); err != nil {
			return err
		}
		if p.Fraction <= 0 || p.Fraction > 1 {
			return fmt.Errorf("faults: partition %s fraction %v outside (0, 1]", p.Site, p.Fraction)
		}
	}
	// Per-site down windows (outages + flap cycles) must not overlap.
	for site, wins := range s.downWindows() {
		for i := 1; i < len(wins); i++ {
			if wins[i].start < wins[i-1].end {
				return fmt.Errorf("faults: site %s has overlapping down windows [%v, %v) and [%v, %v)",
					site, wins[i-1].start, wins[i-1].end, wins[i].start, wins[i].end)
			}
		}
	}
	return nil
}

// downWindows expands outages and flaps into per-site sorted down
// windows. Flap cycles are clipped to the flap's envelope.
func (s *Schedule) downWindows() map[string][]window {
	out := make(map[string][]window)
	for _, o := range s.Outages {
		out[o.Site] = append(out[o.Site], window{o.Start, o.End})
	}
	for _, f := range s.Flaps {
		if f.Period <= 0 || f.DownFrac <= 0 {
			continue // Validate reports these; keep expansion total
		}
		downLen := time.Duration(float64(f.Period) * f.DownFrac)
		for t := f.Start; t < f.End; t += f.Period {
			end := t + downLen
			if end > f.End {
				end = f.End
			}
			if end > t {
				out[f.Site] = append(out[f.Site], window{t, end})
			}
		}
	}
	for site := range out {
		wins := out[site]
		sort.Slice(wins, func(i, j int) bool { return wins[i].start < wins[j].start })
		out[site] = wins
	}
	return out
}

// EventWindow is one schedule entry flattened for impact analysis:
// the envelope of a fault, labelled by kind and site.
type EventWindow struct {
	Kind       string // "outage", "flap", "loss", "slowdown", "partition"
	Site       string
	Start, End time.Duration
}

// EventWindows lists every configured fault as a labelled window, in
// schedule order — the before/during/after units the impact analysis
// reports on. A flap appears as its whole envelope, not per cycle.
func (s *Schedule) EventWindows() []EventWindow {
	if s == nil {
		return nil
	}
	var out []EventWindow
	for _, o := range s.Outages {
		out = append(out, EventWindow{"outage", o.Site, o.Start, o.End})
	}
	for _, f := range s.Flaps {
		out = append(out, EventWindow{"flap", f.Site, f.Start, f.End})
	}
	for _, b := range s.Bursts {
		out = append(out, EventWindow{"loss", b.Site, b.Start, b.End})
	}
	for _, sl := range s.Slowdowns {
		out = append(out, EventWindow{"slowdown", sl.Site, sl.Start, sl.End})
	}
	for _, p := range s.Partitions {
		out = append(out, EventWindow{"partition", p.Site, p.Start, p.End})
	}
	return out
}

// Describe renders the schedule as one human-readable line per fault,
// in schedule order.
func (s *Schedule) Describe() []string {
	if s == nil {
		return nil
	}
	var out []string
	for _, o := range s.Outages {
		out = append(out, fmt.Sprintf("outage %s down [%v, %v)", o.Site, o.Start, o.End))
	}
	for _, f := range s.Flaps {
		out = append(out, fmt.Sprintf("flap %s [%v, %v) period %v down %.0f%%",
			f.Site, f.Start, f.End, f.Period, 100*f.DownFrac))
	}
	for _, b := range s.Bursts {
		out = append(out, fmt.Sprintf("loss %s [%v, %v) rate %.0f%%%s",
			b.Site, b.Start, b.End, 100*b.Rate, fractionSuffix(b.Fraction)))
	}
	for _, sl := range s.Slowdowns {
		factor := sl.Factor
		if factor == 0 {
			factor = 1
		}
		out = append(out, fmt.Sprintf("slowdown %s [%v, %v) +%v rtt x%.1f%s",
			sl.Site, sl.Start, sl.End, sl.AddRTT, factor, fractionSuffix(sl.Fraction)))
	}
	for _, p := range s.Partitions {
		out = append(out, fmt.Sprintf("partition %s [%v, %v) %.0f%% of resolvers",
			p.Site, p.Start, p.End, 100*p.Fraction))
	}
	return out
}

func fractionSuffix(f float64) string {
	if f == 0 || f == 1 {
		return ""
	}
	return fmt.Sprintf(" (%.0f%% of resolvers)", 100*f)
}

// Transition is one site state change implied by the schedule.
type Transition struct {
	Site string
	At   time.Duration
	Down bool
}

// Transitions lists every down/up edge of the schedule's outages and
// flap cycles, sorted by time (ties by site for determinism).
func (s *Schedule) Transitions() []Transition {
	if s == nil {
		return nil
	}
	var out []Transition
	for site, wins := range s.downWindows() {
		for _, w := range wins {
			out = append(out, Transition{Site: site, At: w.start, Down: true})
			out = append(out, Transition{Site: site, At: w.end, Down: false})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Down && !out[j].Down
	})
	return out
}
