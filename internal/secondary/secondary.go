// Package secondary implements a secondary (slave) authoritative
// server: it bootstraps a zone from its primary with AXFR, refreshes
// on the SOA's Refresh/Retry schedule, expires the zone when the
// primary stays unreachable past the SOA Expire interval, and accepts
// NOTIFY (RFC 1996) to re-check immediately.
//
// This is the machinery that kept the paper's multi-site deployments
// serving identical zone copies; combined with internal/authserver it
// turns one zone file into a fleet.
package secondary

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ritw/internal/axfr"
	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// State is the secondary's zone lifecycle state.
type State uint8

// Lifecycle states.
const (
	// StateBootstrapping means no transfer has succeeded yet.
	StateBootstrapping State = iota
	// StateCurrent means the zone is fresh.
	StateCurrent
	// StateStale means a refresh failed; retrying on the Retry timer.
	StateStale
	// StateExpired means the SOA Expire interval passed without a
	// successful refresh; the zone must not be served.
	StateExpired
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateBootstrapping:
		return "bootstrapping"
	case StateCurrent:
		return "current"
	case StateStale:
		return "stale"
	case StateExpired:
		return "expired"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ErrExpired is returned by Zone when the zone may not be served.
var ErrExpired = errors.New("secondary: zone expired")

// Transfer fetches the zone from the primary; axfr.Fetch curried with
// the primary address in production, a stub in tests and simulations.
type Transfer func(origin dnswire.Name) (*zone.Zone, error)

// Config assembles a Secondary.
type Config struct {
	// Origin is the zone to maintain.
	Origin dnswire.Name
	// Transfer performs one zone transfer attempt. Required.
	Transfer Transfer
	// Now returns the current time; defaults to wall-clock time since
	// construction. Injectable for simulated time.
	Now func() time.Duration
	// After schedules a callback; defaults to time.AfterFunc.
	// Injectable for simulated time.
	After func(d time.Duration, fn func())
	// OnStateChange, if set, observes lifecycle transitions.
	OnStateChange func(State)
	// MinInterval floors all SOA timers so misconfigured zones cannot
	// melt the primary (default 5s).
	MinInterval time.Duration
}

// Secondary maintains one transferred zone copy.
type Secondary struct {
	mu      sync.Mutex
	cfg     Config
	zone    *zone.Zone
	state   State
	serial  uint32
	lastOK  time.Duration
	stopped bool
	// gen guards the refresh chain: every attempt bumps it, and a
	// scheduled follow-up only runs if it is still the latest. Without
	// this, each NOTIFY would fork an additional perpetual chain.
	gen uint64

	refreshes, failures int
}

// NewSecondary validates cfg and creates the maintainer (call Start to
// begin transferring).
func NewSecondary(cfg Config) (*Secondary, error) {
	if cfg.Transfer == nil {
		return nil, errors.New("secondary: Transfer is required")
	}
	if cfg.Now == nil || cfg.After == nil {
		base := time.Now()
		cfg.Now = func() time.Duration { return time.Since(base) }
		cfg.After = func(d time.Duration, fn func()) { time.AfterFunc(d, fn) }
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 5 * time.Second
	}
	return &Secondary{cfg: cfg, state: StateBootstrapping}, nil
}

// Start performs the initial transfer attempt and schedules the
// refresh cycle.
func (s *Secondary) Start() {
	s.attempt()
}

// Stop halts future scheduled attempts (in-flight ones complete).
func (s *Secondary) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
}

// Zone returns the served zone copy, or ErrExpired when the data may
// no longer be served (bootstrapping or expired).
func (s *Secondary) Zone() (*zone.Zone, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.zone == nil || s.state == StateExpired {
		return nil, ErrExpired
	}
	return s.zone, nil
}

// State returns the lifecycle state.
func (s *Secondary) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Serial returns the serial of the served copy (0 before bootstrap).
func (s *Secondary) Serial() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serial
}

// Stats returns refresh attempt counters.
func (s *Secondary) Stats() (refreshes, failures int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshes, s.failures
}

// Notify handles a NOTIFY for the zone: an immediate refresh attempt,
// as RFC 1996 prescribes. Notifications for other zones are ignored.
func (s *Secondary) Notify(origin dnswire.Name) {
	if !origin.Equal(s.cfg.Origin) {
		return
	}
	s.attempt()
}

// attempt performs one transfer attempt and schedules the next one.
func (s *Secondary) attempt() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.gen++
	myGen := s.gen
	s.refreshes++
	s.mu.Unlock()

	z, err := s.cfg.Transfer(s.cfg.Origin)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	now := s.cfg.Now()
	var next time.Duration
	if err == nil {
		if soa, ok := z.SOA(); ok {
			data := soa.Data.(dnswire.SOA)
			s.zone = z
			s.serial = data.Serial
			s.lastOK = now
			s.setStateLocked(StateCurrent)
			next = s.clamp(time.Duration(data.Refresh) * time.Second)
		} else {
			err = zone.ErrNoSOA
		}
	}
	if err != nil {
		s.failures++
		retry, expire := s.timersLocked()
		switch {
		case s.zone == nil:
			s.setStateLocked(StateBootstrapping)
		case now-s.lastOK >= expire:
			s.setStateLocked(StateExpired)
		default:
			s.setStateLocked(StateStale)
		}
		next = retry
	}
	s.cfg.After(next, func() {
		// Only the latest chain continues: if a NOTIFY or another
		// attempt ran since this timer was armed, this link is stale.
		s.mu.Lock()
		stale := s.gen != myGen || s.stopped
		s.mu.Unlock()
		if !stale {
			s.attempt()
		}
	})
}

// timersLocked derives retry and expire intervals from the served
// copy's SOA (bootstrap defaults when none).
func (s *Secondary) timersLocked() (retry, expire time.Duration) {
	retry, expire = 30*time.Second, 7*24*time.Hour
	if s.zone != nil {
		if soa, ok := s.zone.SOA(); ok {
			data := soa.Data.(dnswire.SOA)
			retry = time.Duration(data.Retry) * time.Second
			expire = time.Duration(data.Expire) * time.Second
		}
	}
	return s.clamp(retry), expire
}

func (s *Secondary) clamp(d time.Duration) time.Duration {
	if d < s.cfg.MinInterval {
		return s.cfg.MinInterval
	}
	return d
}

func (s *Secondary) setStateLocked(st State) {
	if s.state == st {
		return
	}
	s.state = st
	if s.cfg.OnStateChange != nil {
		s.cfg.OnStateChange(st)
	}
}

// FetchFrom returns a Transfer that pulls from a primary address
// ("host:port") over TCP.
func FetchFrom(primary string, timeout time.Duration) Transfer {
	return func(origin dnswire.Name) (*zone.Zone, error) {
		return axfr.Fetch(primary, origin, timeout)
	}
}
