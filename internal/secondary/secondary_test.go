package secondary

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

var origin = dnswire.MustParseName("sync.nl")

// zoneWithSerial builds a small zone with the given serial and timers
// refresh=60s retry=20s expire=300s.
func zoneWithSerial(t *testing.T, serial uint32) *zone.Zone {
	t.Helper()
	text := fmt.Sprintf("$ORIGIN sync.nl.\n@ IN SOA ns hm %d 60 20 300 30\n@ IN NS ns\nw IN TXT \"v%d\"\n", serial, serial)
	z, err := zone.ParseString(text, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

// fakeTimeline provides manual virtual time with ordered callbacks.
type fakeTimeline struct {
	mu     sync.Mutex
	now    time.Duration
	timers []struct {
		at time.Duration
		fn func()
	}
}

func (f *fakeTimeline) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeTimeline) After(d time.Duration, fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.timers = append(f.timers, struct {
		at time.Duration
		fn func()
	}{f.now + d, fn})
}

// advance runs timers due by now+d in time order.
func (f *fakeTimeline) advance(d time.Duration) {
	f.mu.Lock()
	deadline := f.now + d
	f.mu.Unlock()
	for {
		f.mu.Lock()
		idx := -1
		for i, t := range f.timers {
			if t.at <= deadline && (idx == -1 || t.at < f.timers[idx].at) {
				idx = i
			}
		}
		if idx == -1 {
			f.now = deadline
			f.mu.Unlock()
			break
		}
		tm := f.timers[idx]
		f.timers = append(f.timers[:idx], f.timers[idx+1:]...)
		if tm.at > f.now {
			f.now = tm.at
		}
		f.mu.Unlock()
		tm.fn()
	}
}

// scriptedTransfer serves zones (or errors) in sequence, repeating the
// final entry forever.
type scriptedTransfer struct {
	mu    sync.Mutex
	zones []*zone.Zone
	errs  []error
	calls int
}

func (s *scriptedTransfer) transfer(dnswire.Name) (*zone.Zone, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.calls
	if i >= len(s.zones) {
		i = len(s.zones) - 1
	}
	s.calls++
	return s.zones[i], s.errs[i]
}

func newSecondaryWith(t *testing.T, tl *fakeTimeline, tr Transfer) *Secondary {
	t.Helper()
	s, err := NewSecondary(Config{
		Origin:      origin,
		Transfer:    tr,
		Now:         tl.Now,
		After:       tl.After,
		MinInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBootstrapAndServe(t *testing.T) {
	tl := &fakeTimeline{}
	st := &scriptedTransfer{zones: []*zone.Zone{zoneWithSerial(t, 1)}, errs: []error{nil}}
	s := newSecondaryWith(t, tl, st.transfer)

	if _, err := s.Zone(); err != ErrExpired {
		t.Error("zone should be unavailable before bootstrap")
	}
	s.Start()
	if s.State() != StateCurrent || s.Serial() != 1 {
		t.Fatalf("state=%v serial=%d", s.State(), s.Serial())
	}
	z, err := s.Zone()
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup(dnswire.MustParseName("w.sync.nl"), dnswire.TypeTXT)
	if res.Kind != zone.Success {
		t.Error("transferred zone should answer")
	}
}

func TestRefreshPicksUpNewSerial(t *testing.T) {
	tl := &fakeTimeline{}
	st := &scriptedTransfer{
		zones: []*zone.Zone{zoneWithSerial(t, 1), zoneWithSerial(t, 2)},
		errs:  []error{nil, nil},
	}
	s := newSecondaryWith(t, tl, st.transfer)
	s.Start()
	// Refresh is 60s; nothing happens before that.
	tl.advance(59 * time.Second)
	if s.Serial() != 1 {
		t.Fatalf("premature refresh: serial %d", s.Serial())
	}
	tl.advance(2 * time.Second)
	if s.Serial() != 2 {
		t.Fatalf("refresh missed: serial %d", s.Serial())
	}
	if refreshes, failures := s.Stats(); refreshes != 2 || failures != 0 {
		t.Errorf("stats = %d/%d", refreshes, failures)
	}
}

func TestRetryAndExpire(t *testing.T) {
	tl := &fakeTimeline{}
	failure := errors.New("primary unreachable")
	st := &scriptedTransfer{
		zones: []*zone.Zone{zoneWithSerial(t, 1), nil},
		errs:  []error{nil, failure},
	}
	s := newSecondaryWith(t, tl, st.transfer)
	var transitions []State
	s.cfg.OnStateChange = func(state State) { transitions = append(transitions, state) }
	s.Start()

	// First refresh at 60s fails -> stale, retrying every 20s.
	tl.advance(61 * time.Second)
	if s.State() != StateStale {
		t.Fatalf("state = %v, want stale", s.State())
	}
	if _, err := s.Zone(); err != nil {
		t.Error("stale zone must still be served")
	}
	// Expire is 300s after the last success.
	tl.advance(300 * time.Second)
	if s.State() != StateExpired {
		t.Fatalf("state = %v, want expired", s.State())
	}
	if _, err := s.Zone(); err != ErrExpired {
		t.Error("expired zone must not be served")
	}
	// The observer saw the full lifecycle in order.
	want := []State{StateCurrent, StateStale, StateExpired}
	if len(transitions) < len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i, st := range want {
		if transitions[i] != st {
			t.Fatalf("transition %d = %v, want %v (all: %v)", i, transitions[i], st, transitions)
		}
	}
}

func TestRecoveryAfterStale(t *testing.T) {
	tl := &fakeTimeline{}
	st := &scriptedTransfer{
		zones: []*zone.Zone{zoneWithSerial(t, 1), nil, zoneWithSerial(t, 3)},
		errs:  []error{nil, errors.New("blip"), nil},
	}
	s := newSecondaryWith(t, tl, st.transfer)
	s.Start()
	tl.advance(61 * time.Second) // refresh fails -> stale
	if s.State() != StateStale {
		t.Fatal("expected stale")
	}
	tl.advance(21 * time.Second) // retry succeeds
	if s.State() != StateCurrent || s.Serial() != 3 {
		t.Fatalf("state=%v serial=%d", s.State(), s.Serial())
	}
}

func TestNotifyTriggersImmediateRefresh(t *testing.T) {
	tl := &fakeTimeline{}
	st := &scriptedTransfer{
		zones: []*zone.Zone{zoneWithSerial(t, 1), zoneWithSerial(t, 5)},
		errs:  []error{nil, nil},
	}
	s := newSecondaryWith(t, tl, st.transfer)
	s.Start()
	// NOTIFY for some other zone: ignored.
	s.Notify(dnswire.MustParseName("other.nl"))
	if s.Serial() != 1 {
		t.Fatal("foreign notify must be ignored")
	}
	s.Notify(origin)
	if s.Serial() != 5 {
		t.Fatalf("notify did not refresh: serial %d", s.Serial())
	}
}

func TestStopHaltsSchedule(t *testing.T) {
	tl := &fakeTimeline{}
	st := &scriptedTransfer{zones: []*zone.Zone{zoneWithSerial(t, 1)}, errs: []error{nil}}
	s := newSecondaryWith(t, tl, st.transfer)
	s.Start()
	s.Stop()
	tl.advance(time.Hour)
	if refreshes, _ := s.Stats(); refreshes != 1 {
		t.Errorf("refreshes after stop = %d", refreshes)
	}
}

func TestBootstrapFailureKeepsTrying(t *testing.T) {
	tl := &fakeTimeline{}
	st := &scriptedTransfer{
		zones: []*zone.Zone{nil, nil, zoneWithSerial(t, 9)},
		errs:  []error{errors.New("down"), errors.New("down"), nil},
	}
	s := newSecondaryWith(t, tl, st.transfer)
	s.Start()
	if s.State() != StateBootstrapping {
		t.Fatalf("state = %v", s.State())
	}
	tl.advance(2 * time.Minute)
	if s.State() != StateCurrent || s.Serial() != 9 {
		t.Fatalf("bootstrap retry failed: %v serial=%d", s.State(), s.Serial())
	}
}

func TestSOALessTransferIsFailure(t *testing.T) {
	tl := &fakeTimeline{}
	empty := zone.New(origin)
	st := &scriptedTransfer{zones: []*zone.Zone{empty}, errs: []error{nil}}
	s := newSecondaryWith(t, tl, st.transfer)
	s.Start()
	if s.State() != StateBootstrapping {
		t.Errorf("SOA-less transfer should not bootstrap: %v", s.State())
	}
	if _, failures := s.Stats(); failures != 1 {
		t.Errorf("failures = %d", failures)
	}
}

func TestNewSecondaryValidation(t *testing.T) {
	if _, err := NewSecondary(Config{}); err == nil {
		t.Error("missing Transfer should fail")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateBootstrapping: "bootstrapping", StateCurrent: "current",
		StateStale: "stale", StateExpired: "expired", State(9): "State(9)",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}

// TestEndToEndWithRealPrimary wires a secondary to a live authserver
// primary over loopback TCP and serves the transferred zone from a
// second authserver engine.
func TestEndToEndWithRealPrimary(t *testing.T) {
	primaryZone := zoneWithSerial(t, 42)
	primary := authserver.NewServer(authserver.NewEngine(authserver.Config{
		Zones: []*zone.Zone{primaryZone}, Identity: "primary",
	}))
	if err := primary.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	s, err := NewSecondary(Config{
		Origin:   origin,
		Transfer: FetchFrom(primary.Addr().String(), 3*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	if s.State() != StateCurrent || s.Serial() != 42 {
		t.Fatalf("live bootstrap: %v serial=%d", s.State(), s.Serial())
	}
	z, err := s.Zone()
	if err != nil {
		t.Fatal(err)
	}
	// The secondary now answers like the primary.
	eng := authserver.NewEngine(authserver.Config{Zones: []*zone.Zone{z}, Identity: "secondary"})
	q := dnswire.NewQuery(1, dnswire.MustParseName("w.sync.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	out := eng.HandleQuery(netip.AddrFrom4([4]byte{203, 0, 113, 7}), wire, 0)
	if out == nil {
		t.Fatal("secondary dropped query")
	}
	resp, err := dnswire.Unpack(out)
	if err != nil || resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("secondary answer: %v %v", resp, err)
	}
	if got := resp.Answers[0].Data.(dnswire.TXT).Joined(); got != "v42" {
		t.Errorf("content = %q", got)
	}
}

func TestNotifyDoesNotForkRefreshChains(t *testing.T) {
	tl := &fakeTimeline{}
	st := &scriptedTransfer{zones: []*zone.Zone{zoneWithSerial(t, 1)}, errs: []error{nil}}
	s := newSecondaryWith(t, tl, st.transfer)
	s.Start()
	// Ten NOTIFYs each trigger one immediate refresh...
	for i := 0; i < 10; i++ {
		s.Notify(origin)
	}
	refreshesAfterNotify, _ := s.Stats()
	if refreshesAfterNotify != 11 {
		t.Fatalf("refreshes = %d, want 11", refreshesAfterNotify)
	}
	// ...but must not multiply the steady-state cadence: over the next
	// ten refresh intervals (60s each) only ~10 more attempts may run,
	// not 10 chains x 10 intervals.
	tl.advance(10 * 61 * time.Second)
	refreshes, _ := s.Stats()
	extra := refreshes - refreshesAfterNotify
	if extra > 12 {
		t.Errorf("refresh chains multiplied: %d attempts in 10 intervals", extra)
	}
	if extra < 9 {
		t.Errorf("refresh starved: %d attempts in 10 intervals", extra)
	}
}
