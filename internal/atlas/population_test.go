package atlas

import (
	"testing"
	"time"

	"ritw/internal/geo"
	"ritw/internal/resolver"
)

func TestGenerateDefaults(t *testing.T) {
	pop, err := Generate(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st := pop.Summarize()
	if st.Probes != 9700 {
		t.Errorf("probes = %d", st.Probes)
	}
	// The paper: ~3,300 ASes for ~9,700 probes.
	if st.ASes < 2300 || st.ASes > 4600 {
		t.Errorf("ASes = %d, want paper-like ~3300", st.ASes)
	}
	if st.Resolvers < 2000 {
		t.Errorf("resolvers = %d, want thousands", st.Resolvers)
	}
	// European skew.
	eu := float64(st.ByContinent[geo.Europe]) / float64(st.Probes)
	if eu < 0.5 || eu > 0.75 {
		t.Errorf("EU share = %.2f", eu)
	}
	// All continents populated.
	for _, c := range geo.Continents() {
		if st.ByContinent[c] == 0 {
			t.Errorf("continent %v empty", c)
		}
	}
	// IPv6 capability ~31%.
	v6 := float64(st.IPv6Capable) / float64(st.Probes)
	if v6 < 0.25 || v6 > 0.40 {
		t.Errorf("IPv6 share = %.2f", v6)
	}
	// Multi-resolver probes exist (the paper's VP definition depends
	// on them).
	if st.MultiResolver == 0 || st.PublicUsers == 0 {
		t.Errorf("multi=%d public=%d", st.MultiResolver, st.PublicUsers)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Probes) != len(b.Probes) || len(a.Resolvers) != len(b.Resolvers) {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range a.Probes {
		if a.Probes[i].Loc != b.Probes[i].Loc || a.Probes[i].ASN != b.Probes[i].ASN {
			t.Fatalf("probe %d differs", i)
		}
	}
	c, err := Generate(DefaultConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Probes {
		if a.Probes[i].Loc != c.Probes[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateMixShares(t *testing.T) {
	pop, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	st := pop.Summarize()
	total := 0
	for _, n := range st.ByPolicy {
		total += n
	}
	if total != st.Resolvers {
		t.Fatalf("policy counts %d != resolvers %d", total, st.Resolvers)
	}
	// Every behaviour in the default mix is represented, roughly in
	// proportion (loose bands; the AS pooling adds variance).
	for _, m := range DefaultMix() {
		frac := float64(st.ByPolicy[m.Kind]) / float64(total)
		if frac < m.Share*0.5 || frac > m.Share*1.8 {
			t.Errorf("%v share = %.3f, configured %.3f", m.Kind, frac, m.Share)
		}
	}
}

func TestGenerateCustomMix(t *testing.T) {
	cfg := Config{
		NumProbes: 500,
		Seed:      3,
		Mix: []PolicyShare{
			{Kind: resolver.KindUniform, Share: 1, InfraTTL: time.Minute},
		},
		PublicDNSShare: 0, // all AS resolvers uniform
	}
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pop.Resolvers {
		if r.Public {
			continue // public sites exclude sticky but may pick any non-sticky
		}
		if r.Kind != resolver.KindUniform {
			t.Fatalf("unexpected kind %v", r.Kind)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumProbes: 0}); err == nil {
		t.Error("zero probes should fail")
	}
	if _, err := Generate(Config{NumProbes: 10, Mix: []PolicyShare{{Kind: resolver.KindUniform, Share: -1}}}); err == nil {
		t.Error("negative share should fail")
	}
	if _, err := Generate(Config{NumProbes: 10, Mix: []PolicyShare{{Kind: resolver.KindUniform, Share: 0}}}); err == nil {
		t.Error("zero-total mixture should fail")
	}
}

func TestProbeResolverIndices(t *testing.T) {
	pop, err := Generate(DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pop.Probes {
		if len(p.Resolvers) == 0 {
			t.Fatalf("probe %d has no resolver", p.ID)
		}
		for _, idx := range p.Resolvers {
			if PublicMarker(idx) {
				continue
			}
			if idx < 0 || idx >= len(pop.Resolvers) {
				t.Fatalf("probe %d has bad resolver index %d", p.ID, idx)
			}
		}
	}
	if len(pop.PublicSites) == 0 {
		t.Fatal("no public sites")
	}
	for _, idx := range pop.PublicSites {
		if !pop.Resolvers[idx].Public {
			t.Errorf("index %d not marked public", idx)
		}
		if pop.Resolvers[idx].Kind == resolver.KindSticky {
			t.Error("public DNS should not be sticky")
		}
	}
}

func TestScatterStaysNearAndInRange(t *testing.T) {
	pop, err := Generate(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pop.Probes {
		if p.Loc.Lat < -90 || p.Loc.Lat > 90 || p.Loc.Lon < -180 || p.Loc.Lon > 180 {
			t.Fatalf("probe %d at invalid coordinate %+v", p.ID, p.Loc)
		}
		if d := p.Loc.DistanceKm(p.Site.Coord); d > 700 {
			t.Fatalf("probe %d scattered %f km from its region", p.ID, d)
		}
	}
}

func TestLastMilePopulated(t *testing.T) {
	pop, err := Generate(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, p := range pop.Probes {
		if p.LastMileMs == 0 {
			zero++
		}
	}
	if zero > len(pop.Probes)/100 {
		t.Errorf("too many probes with zero last-mile: %d", zero)
	}
}
