// Package atlas generates the synthetic vantage-point population that
// stands in for RIPE Atlas: ~9,700 probes spread over ~3,300 ASes with
// the platform's strong European skew, each wired to one or more
// recursive resolvers whose selection behaviour is drawn from a
// configurable market-share mixture.
//
// The mixture is the reproduction's key free parameter: the paper
// measures the aggregate of an unknown implementation mix, and Yu et
// al. [33] supply the per-implementation algorithms. EXPERIMENTS.md
// records the calibration.
package atlas

import (
	"fmt"
	"math/rand"
	"time"

	"ritw/internal/geo"
	"ritw/internal/resolver"
)

// PolicyShare pairs a selection behaviour with its population share.
type PolicyShare struct {
	Kind  resolver.PolicyKind
	Share float64
	// InfraTTL is the infrastructure-cache retention for resolvers of
	// this kind (BIND ~10 min, Unbound ~15 min, per the paper §4.4).
	InfraTTL time.Duration
	// Retention selects hard expiry vs decay-and-keep on TTL lapse.
	Retention resolver.Retention
	// Singleflight enables engine-level upstream dedup for resolvers of
	// this kind, and QnameMinimize the RFC 9156 query pattern — the
	// modern-recursive behaviours (secDNS, Unbound defaults). Both are
	// omitempty so mixes without them serialize exactly as before (the
	// lanewire job fingerprint and old snapshots stay valid).
	Singleflight  bool `json:",omitempty"`
	QnameMinimize bool `json:",omitempty"`
}

// DefaultMix is the calibrated resolver market-share mixture. Shares
// need not sum to one; they are normalized.
func DefaultMix() []PolicyShare {
	return []PolicyShare{
		{Kind: resolver.KindBINDLike, Share: 0.24, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindUnboundLike, Share: 0.24, InfraTTL: 15 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindWeightedRTT, Share: 0.17, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindUniform, Share: 0.14, InfraTTL: 10 * time.Minute, Retention: resolver.HardExpire},
		{Kind: resolver.KindRoundRobin, Share: 0.13, InfraTTL: 10 * time.Minute, Retention: resolver.HardExpire},
		{Kind: resolver.KindSticky, Share: 0.08, InfraTTL: 0, Retention: resolver.HardExpire},
	}
}

// PaperMix is the fleet mixture calibrated for the entity-keyed
// re-draw (measure.RunConfig.Mix): at the reference scale the
// mixture's weak/strong preference shares land inside the paper's
// Figure-4 bands (59-69% weak, 10-37% strong). It differs from
// DefaultMix because the re-draw assigns kinds by resolver name, not
// by the population generator's sequential draw, so the split of
// qualified VPs across kinds shifts and the shares need their own
// calibration (EXPERIMENTS.md records both).
func PaperMix() []PolicyShare {
	return []PolicyShare{
		{Kind: resolver.KindBINDLike, Share: 0.38, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindUnboundLike, Share: 0.14, InfraTTL: 15 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindWeightedRTT, Share: 0.22, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindUniform, Share: 0.07, InfraTTL: 10 * time.Minute, Retention: resolver.HardExpire},
		{Kind: resolver.KindRoundRobin, Share: 0.06, InfraTTL: 10 * time.Minute, Retention: resolver.HardExpire},
		{Kind: resolver.KindSticky, Share: 0.13, InfraTTL: 0, Retention: resolver.HardExpire},
	}
}

// ResolverSpec describes one recursive resolver instance to create.
type ResolverSpec struct {
	// Name is a stable identifier ("r0042" or "public3-fra").
	Name string
	// Kind is the selection behaviour.
	Kind resolver.PolicyKind
	// InfraTTL and Retention configure the infrastructure cache.
	InfraTTL  time.Duration
	Retention resolver.Retention
	// Singleflight and QnameMinimize enable the corresponding engine
	// behaviours (see PolicyShare).
	Singleflight  bool `json:",omitempty"`
	QnameMinimize bool `json:",omitempty"`
	// Loc is where the resolver runs.
	Loc geo.Coord
	// ASN is the autonomous system the resolver lives in.
	ASN int
	// Public marks a site of an anycast public-DNS service.
	Public bool
}

// Probe is one vantage point (a RIPE Atlas probe analogue).
type Probe struct {
	// ID is the probe identifier.
	ID int
	// Site anchors the probe's region; Loc adds local scatter.
	Site geo.Site
	Loc  geo.Coord
	// ASN is the probe's AS.
	ASN int
	// Continent duplicates Site.Continent for grouping convenience.
	Continent geo.Continent
	// LastMileMs is the probe's access-network latency.
	LastMileMs float64
	// IPv6 marks IPv6-capable probes (~31% per the paper's cited 69%
	// IPv4-only figure).
	IPv6 bool
	// Resolvers indexes into Population.Resolvers: the recursive(s)
	// the probe's host network hands it. Most probes have one; some
	// sit behind configurations with several.
	Resolvers []int
}

// Population is the generated measurement substrate.
type Population struct {
	Probes    []Probe
	Resolvers []ResolverSpec
	// PublicService groups the indices of public-DNS site resolvers;
	// a probe "using public DNS" reaches its nearest site.
	PublicSites []int
}

// Config controls population synthesis.
type Config struct {
	// NumProbes is the probe count (paper: ~9,700).
	NumProbes int
	// Seed drives all randomness.
	Seed int64
	// Mix is the resolver-behaviour market share (DefaultMix if nil).
	Mix []PolicyShare
	// PublicDNSShare is the fraction of probes whose (or one of whose)
	// recursive is an anycast public-DNS service.
	PublicDNSShare float64
	// MultiResolverShare is the fraction of probes configured with
	// more than one recursive (the paper treats each (probe,
	// recursive) pair as a distinct VP).
	MultiResolverShare float64
	// ResolversPerAS is the mean size of each AS's shared resolver
	// pool.
	ResolversPerAS float64
	// ProbesPerAS controls AS granularity (paper: ~3 probes per AS on
	// average: 9,700 probes over 3,300 ASes).
	ProbesPerAS float64
}

// DefaultConfig returns the paper-scale population configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		NumProbes:          9700,
		Seed:               seed,
		Mix:                DefaultMix(),
		PublicDNSShare:     0.13,
		MultiResolverShare: 0.14,
		ResolversPerAS:     1.6,
		ProbesPerAS:        2.9,
	}
}

// Generate synthesizes a population from cfg.
func Generate(cfg Config) (*Population, error) {
	if cfg.NumProbes <= 0 {
		return nil, fmt.Errorf("atlas: NumProbes must be positive, got %d", cfg.NumProbes)
	}
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	var mixTotal float64
	for _, m := range mix {
		if m.Share < 0 {
			return nil, fmt.Errorf("atlas: negative share for %v", m.Kind)
		}
		mixTotal += m.Share
	}
	if mixTotal == 0 {
		return nil, fmt.Errorf("atlas: mixture has zero total share")
	}
	if cfg.ProbesPerAS <= 0 {
		cfg.ProbesPerAS = 2.9
	}
	if cfg.ResolversPerAS <= 0 {
		cfg.ResolversPerAS = 1.6
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := &Population{}

	pickKind := func() PolicyShare {
		x := rng.Float64() * mixTotal
		for _, m := range mix {
			x -= m.Share
			if x <= 0 {
				return m
			}
		}
		return mix[len(mix)-1]
	}

	// Public-DNS anycast sites: a worldwide footprint like the large
	// open resolvers the paper mentions (Google, OpenDNS).
	publicSiteCodes := []string{"FRA", "LHR", "EWR", "SFO", "GRU", "NRT", "SIN", "SYD"}
	for i, code := range publicSiteCodes {
		site := geo.MustSite(code)
		m := pickPublicKind(mix, rng, mixTotal)
		pop.PublicSites = append(pop.PublicSites, len(pop.Resolvers))
		pop.Resolvers = append(pop.Resolvers, ResolverSpec{
			Name:          fmt.Sprintf("public-%d-%s", i, code),
			Kind:          m.Kind,
			InfraTTL:      m.InfraTTL,
			Retention:     m.Retention,
			Singleflight:  m.Singleflight,
			QnameMinimize: m.QnameMinimize,
			Loc:           site.Coord,
			ASN:           15169, // the classic public-DNS AS
			Public:        true,
		})
	}

	sites, weights := geo.ProbeRegions()
	var weightTotal float64
	for _, w := range weights {
		weightTotal += w
	}
	pickSite := func() geo.Site {
		x := rng.Float64() * weightTotal
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return sites[i]
			}
		}
		return sites[len(sites)-1]
	}

	// Group probes into ASes per region; each AS gets a shared
	// resolver pool.
	type asInfo struct {
		asn       int
		site      geo.Site
		resolvers []int
	}
	asPools := make(map[string][]*asInfo) // region code -> ASes
	nextASN := 64512

	asForProbe := func(site geo.Site) *asInfo {
		pool := asPools[site.Code]
		// Grow the pool so that mean probes-per-AS ≈ cfg.ProbesPerAS.
		if len(pool) == 0 || rng.Float64() < 1/cfg.ProbesPerAS {
			info := &asInfo{asn: nextASN, site: site}
			nextASN++
			nResolvers := 1
			if rng.Float64() < cfg.ResolversPerAS-1 {
				nResolvers = 2
			}
			for r := 0; r < nResolvers; r++ {
				m := pickKind()
				loc := scatter(rng, site.Coord, 150)
				info.resolvers = append(info.resolvers, len(pop.Resolvers))
				pop.Resolvers = append(pop.Resolvers, ResolverSpec{
					Name:          fmt.Sprintf("r%05d", len(pop.Resolvers)),
					Kind:          m.Kind,
					InfraTTL:      m.InfraTTL,
					Retention:     m.Retention,
					Singleflight:  m.Singleflight,
					QnameMinimize: m.QnameMinimize,
					Loc:           loc,
					ASN:           info.asn,
				})
			}
			asPools[site.Code] = append(pool, info)
			return info
		}
		return pool[rng.Intn(len(pool))]
	}

	for i := 0; i < cfg.NumProbes; i++ {
		site := pickSite()
		as := asForProbe(site)
		p := Probe{
			ID:         i,
			Site:       site,
			Loc:        scatter(rng, site.Coord, 300),
			ASN:        as.asn,
			Continent:  site.Continent,
			LastMileMs: geo.LastMileMs(rng),
			IPv6:       rng.Float64() < 0.31,
		}
		// Wire resolvers: AS pool, possibly public DNS, possibly both.
		usePublic := rng.Float64() < cfg.PublicDNSShare
		multi := rng.Float64() < cfg.MultiResolverShare
		asResolver := as.resolvers[rng.Intn(len(as.resolvers))]
		switch {
		case usePublic && multi:
			p.Resolvers = []int{asResolver, publicMarker}
		case usePublic:
			p.Resolvers = []int{publicMarker}
		case multi && len(as.resolvers) > 1:
			p.Resolvers = []int{as.resolvers[0], as.resolvers[1]}
		case multi:
			// Second resolver from another AS in the same region.
			other := asForProbe(site)
			p.Resolvers = []int{asResolver, other.resolvers[rng.Intn(len(other.resolvers))]}
		default:
			p.Resolvers = []int{asResolver}
		}
		pop.Probes = append(pop.Probes, p)
	}
	return pop, nil
}

// publicMarker in a probe's resolver list means "the public anycast
// service" — the harness resolves it to the catchment site.
const publicMarker = -1

// PublicMarker reports whether a probe resolver index refers to the
// public anycast DNS service rather than a concrete resolver.
func PublicMarker(idx int) bool { return idx == publicMarker }

// ShareAt maps a keyed draw onto the mixture's cumulative share
// distribution: the key's top 53 bits become a uniform in [0, 1),
// scaled by the (unnormalized) share total, and the first share whose
// cumulative mass covers it wins. noSticky redirects a Sticky draw to
// the next eligible share in mixture order, mirroring pickPublicKind's
// exclusion for anycast public-DNS sites. The outcome is a pure
// function of (mix, key) — no RNG state — which is what lets the
// measurement planner re-assign policies entity-keyed without
// perturbing any other seeded stream.
func ShareAt(mix []PolicyShare, key uint64, noSticky bool) PolicyShare {
	fallback := PolicyShare{Kind: resolver.KindBINDLike, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep}
	var total float64
	for _, m := range mix {
		if m.Share > 0 {
			total += m.Share
		}
	}
	if total <= 0 {
		return fallback
	}
	x := float64(key>>11) / (1 << 53) * total
	idx := -1
	for i, m := range mix {
		if m.Share <= 0 {
			continue
		}
		x -= m.Share
		idx = i
		if x <= 0 {
			break
		}
	}
	if !noSticky || mix[idx].Kind != resolver.KindSticky {
		return mix[idx]
	}
	for step := 1; step <= len(mix); step++ {
		m := mix[(idx+step)%len(mix)]
		if m.Share > 0 && m.Kind != resolver.KindSticky {
			return m
		}
	}
	return fallback
}

// pickPublicKind draws a behaviour for a public-DNS site, excluding
// Sticky (hyperscale resolvers do measure latency).
func pickPublicKind(mix []PolicyShare, rng *rand.Rand, total float64) PolicyShare {
	for tries := 0; tries < 32; tries++ {
		x := rng.Float64() * total
		for _, m := range mix {
			x -= m.Share
			if x <= 0 {
				if m.Kind == resolver.KindSticky {
					break
				}
				return m
			}
		}
	}
	return PolicyShare{Kind: resolver.KindBINDLike, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep}
}

// scatter jitters a coordinate by up to radiusKm (roughly) so probes
// and resolvers do not sit at one point.
func scatter(rng *rand.Rand, c geo.Coord, radiusKm float64) geo.Coord {
	// ~111 km per degree latitude.
	dLat := (rng.Float64()*2 - 1) * radiusKm / 111
	dLon := (rng.Float64()*2 - 1) * radiusKm / 111
	lat := c.Lat + dLat
	if lat > 89 {
		lat = 89
	}
	if lat < -89 {
		lat = -89
	}
	lon := c.Lon + dLon
	if lon > 180 {
		lon -= 360
	}
	if lon < -180 {
		lon += 360
	}
	return geo.Coord{Lat: lat, Lon: lon}
}

// Stats summarizes a population for Table-1-style reporting.
type Stats struct {
	Probes        int
	Resolvers     int
	ASes          int
	ByContinent   map[geo.Continent]int
	ByPolicy      map[resolver.PolicyKind]int
	MultiResolver int
	PublicUsers   int
	IPv6Capable   int
}

// Summarize computes population statistics.
func (p *Population) Summarize() Stats {
	st := Stats{
		Probes:      len(p.Probes),
		Resolvers:   len(p.Resolvers),
		ByContinent: make(map[geo.Continent]int),
		ByPolicy:    make(map[resolver.PolicyKind]int),
	}
	asns := make(map[int]bool)
	for _, pr := range p.Probes {
		st.ByContinent[pr.Continent]++
		asns[pr.ASN] = true
		if len(pr.Resolvers) > 1 {
			st.MultiResolver++
		}
		for _, r := range pr.Resolvers {
			if PublicMarker(r) {
				st.PublicUsers++
				break
			}
		}
		if pr.IPv6 {
			st.IPv6Capable++
		}
	}
	for _, r := range p.Resolvers {
		st.ByPolicy[r.Kind]++
	}
	st.ASes = len(asns)
	return st
}
