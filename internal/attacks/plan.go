package attacks

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/netip"
	"time"
)

// Attack kind tags, used in Report entries, metrics and query-name
// classification.
const (
	KindNXNS    = "nxns"
	KindFlood   = "flood"
	KindReflect = "reflect"
)

// Plan is a compiled, seed-pinned attack schedule. Every stochastic
// choice — bot membership, per-bot phase, reflector membership — is a
// pure function of (seed, campaign, entity), never of execution order,
// so any shard computes the same answer for the entities it owns and
// the merged traffic is layout-independent.
type Plan struct {
	Seed     int64
	Schedule *Schedule
}

// Compile validates the schedule and binds it to the run's attack seed
// stream. A nil or empty schedule compiles to a nil plan.
func Compile(s *Schedule, seed int64) (*Plan, error) {
	if s.Empty() {
		return nil, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Plan{Seed: seed, Schedule: s}, nil
}

// mix64 is the splitmix64 finalizer: a few multiplies away from a
// uniform 64-bit value, the same stream-splitting idiom the fault
// injector and keyed network randomness use.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// key hashes (seed, kind, campaign index, domain, entity) to a uniform
// uint64. domain separates independent draws about the same entity
// (membership vs phase).
func (p *Plan) key(kind string, idx int, domain string, entity string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%d/%s/%s", p.Seed, kind, idx, domain, entity)
	return mix64(h.Sum64())
}

func (p *Plan) member(kind string, idx int, entity string, frac float64) bool {
	if frac >= 1 {
		return true
	}
	return float64(p.key(kind, idx, "member", entity))/float64(math.MaxUint64) < frac
}

// NXNSBot reports whether probe probeID is a bot of NXNS campaign idx.
func (p *Plan) NXNSBot(idx, probeID int) bool {
	return p.member(KindNXNS, idx, fmt.Sprintf("p%d", probeID), p.Schedule.NXNS[idx].Fraction)
}

// FloodBot reports whether probe probeID is a bot of flood campaign idx.
func (p *Plan) FloodBot(idx, probeID int) bool {
	return p.member(KindFlood, idx, fmt.Sprintf("p%d", probeID), p.Schedule.Floods[idx].Fraction)
}

// Reflector reports whether the resolver at addr is abused by
// reflection campaign idx. Keying on the address (not a shard-local
// index) keeps the reflector set identical across shard layouts.
func (p *Plan) Reflector(idx int, addr netip.Addr) bool {
	return p.member(KindReflect, idx, addr.String(), p.Schedule.Reflections[idx].Fraction)
}

// Phase returns the entity's fixed offset in [0, interval) for the
// campaign's pacing loop. Nanosecond-granular keyed phases keep
// same-instant collisions between attack and measurement traffic out
// of the schedule, which is what lets attack runs keep the exact
// (time, seq) determinism contract.
func (p *Plan) Phase(kind string, idx int, entity string, interval time.Duration) time.Duration {
	return time.Duration(p.key(kind, idx, "phase", entity) % uint64(interval))
}
