package attacks

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
)

func testSchedule() *Schedule {
	return &Schedule{
		NXNS: []NXNS{{
			Start: 10 * time.Minute, End: 20 * time.Minute,
			Interval: 10 * time.Second, Fraction: 0.3, Fanout: 10,
		}},
		Floods: []Flood{{
			Start: 5 * time.Minute, End: 25 * time.Minute,
			Interval: 5 * time.Second, Fraction: 0.4, Names: 20,
		}},
		Reflections: []Reflection{{
			Start: 12 * time.Minute, End: 18 * time.Minute,
			Interval: 2 * time.Second, Fraction: 0.5,
		}},
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := (*Schedule)(nil).Validate(); err != nil {
		t.Errorf("nil schedule: %v", err)
	}
	if err := testSchedule().Validate(); err != nil {
		t.Errorf("good schedule: %v", err)
	}
	bad := []*Schedule{
		{NXNS: []NXNS{{Start: 10, End: 5, Interval: 1, Fraction: 0.5, Fanout: 2}}},
		{NXNS: []NXNS{{Start: 0, End: 10, Interval: 0, Fraction: 0.5, Fanout: 2}}},
		{NXNS: []NXNS{{Start: 0, End: 10, Interval: 1, Fraction: 1.5, Fanout: 2}}},
		{NXNS: []NXNS{{Start: 0, End: 10, Interval: 1, Fraction: 0.5, Fanout: 0}}},
		{Floods: []Flood{{Start: 0, End: 10, Interval: 1, Fraction: 0.5, Names: -1}}},
		{Reflections: []Reflection{{Start: 0, End: 10, Interval: 1, Fraction: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d passed validation", i)
		}
	}
}

func TestCompileGating(t *testing.T) {
	for _, s := range []*Schedule{nil, {}} {
		p, err := Compile(s, 42)
		if err != nil || p != nil {
			t.Errorf("Compile(%v) = %v, %v, want nil plan", s, p, err)
		}
	}
	if _, err := Compile(&Schedule{NXNS: []NXNS{{}}}, 42); err == nil {
		t.Error("invalid schedule should not compile")
	}
}

// TestPlanKeyedDraws pins the determinism contract: membership and
// phase are pure functions of (seed, campaign, entity) — stable across
// calls, changed by the seed, and phases land inside the interval.
func TestPlanKeyedDraws(t *testing.T) {
	s := testSchedule()
	p1, err := Compile(s, 42)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Compile(s, 42)
	p3, _ := Compile(s, 43)

	sameMembership, diffMembership := true, false
	bots := 0
	for probe := 0; probe < 400; probe++ {
		if p1.NXNSBot(0, probe) != p2.NXNSBot(0, probe) || p1.FloodBot(0, probe) != p2.FloodBot(0, probe) {
			sameMembership = false
		}
		if p1.NXNSBot(0, probe) != p3.NXNSBot(0, probe) {
			diffMembership = true
		}
		if p1.NXNSBot(0, probe) {
			bots++
		}
	}
	if !sameMembership {
		t.Error("same seed drew different bot sets")
	}
	if !diffMembership {
		t.Error("different seeds drew identical bot sets")
	}
	// Fraction 0.3 of 400: loose 2-sided bound against a broken hash.
	if bots < 60 || bots > 180 {
		t.Errorf("nxns fraction 0.3 enrolled %d of 400 probes", bots)
	}

	addr := netip.MustParseAddr("10.0.0.9")
	if p1.Reflector(0, addr) != p2.Reflector(0, addr) {
		t.Error("same seed drew different reflector sets")
	}
	iv := s.NXNS[0].Interval
	ph := p1.Phase(KindNXNS, 0, "p7", iv)
	if ph < 0 || ph >= iv {
		t.Errorf("phase %v outside [0, %v)", ph, iv)
	}
	if ph != p2.Phase(KindNXNS, 0, "p7", iv) {
		t.Error("same seed drew different phases")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		qname string
		kind  string
		idx   int
		ok    bool
	}{
		{"nf3vnx2b17q5.ourtestdomain.nl.", KindNXNS, 2, true},
		{"wt1b44n9.ourtestdomain.nl.", KindFlood, 1, true},
		{"rf0.ourtestdomain.nl.", KindReflect, 0, true},
		{"rf12", KindReflect, 12, true},
		{"p41x7.ourtestdomain.nl.", "", 0, false}, // benign probe label
		{"nfxvjunk.example.", "", 0, false},
		{"nf1vwrong.example.", "", 0, false}, // nonce not nx-prefixed
		{"wtb3n1.example.", "", 0, false},    // missing campaign index
		{"rf3x.example.", "", 0, false},      // trailing junk
		{"", "", 0, false},
	}
	for _, c := range cases {
		kind, idx, ok := Classify(c.qname)
		if kind != c.kind || idx != c.idx || ok != c.ok {
			t.Errorf("Classify(%q) = %q, %d, %v, want %q, %d, %v",
				c.qname, kind, idx, ok, c.kind, c.idx, c.ok)
		}
	}
}

// TestResponderCraftsGluelessReferral pins the attacker name server:
// fanout NS records in the authority section, every target under the
// victim zone, echoing the query nonce (so fetches are never
// cache-satisfied), and classified back to the right campaign.
func TestResponderCraftsGluelessReferral(t *testing.T) {
	victim := dnswire.MustParseName("ourtestdomain.nl")
	r := &ReferralResponder{Zone: EvilZone, Victim: victim, Fanouts: []int{4, 9}}

	qname, err := EvilZone.Child(NXNSQueryLabel(1, 33, 7))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := dnswire.NewQuery(99, qname, dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	out := r.Respond(wire)
	if out == nil {
		t.Fatal("no referral for an in-zone query")
	}
	resp, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Response || resp.Header.ID != 99 {
		t.Errorf("bad response header: %+v", resp.Header)
	}
	if len(resp.Answers) != 0 || len(resp.Authority) != 9 {
		t.Fatalf("want 9 glueless NS in authority, got %d answers, %d authority",
			len(resp.Answers), len(resp.Authority))
	}
	seen := map[string]bool{}
	for _, rr := range resp.Authority {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			t.Fatalf("authority RR is %T, want NS", rr.Data)
		}
		if !ns.Host.IsSubdomainOf(victim) {
			t.Errorf("target %s not under the victim zone", ns.Host.Key())
		}
		if seen[ns.Host.Key()] {
			t.Errorf("duplicate target %s", ns.Host.Key())
		}
		seen[ns.Host.Key()] = true
		kind, idx, ok := Classify(ns.Host.Key())
		if !ok || kind != KindNXNS || idx != 1 {
			t.Errorf("target %s classified as %q#%d ok=%v", ns.Host.Key(), kind, idx, ok)
		}
	}

	// Junk, responses and out-of-zone queries get nothing.
	if r.Respond([]byte{1, 2, 3}) != nil {
		t.Error("garbage got a referral")
	}
	if r.Respond(out) != nil {
		t.Error("a response got a referral")
	}
	foreign, _ := dnswire.NewQuery(1, victim, dnswire.TypeA).Pack()
	if r.Respond(foreign) != nil {
		t.Error("out-of-zone query got a referral")
	}
	// Unattributable in-zone queries get a minimal fanout-1 referral.
	odd, err := EvilZone.Child("whatever")
	if err != nil {
		t.Fatal(err)
	}
	oddWire, _ := dnswire.NewQuery(2, odd, dnswire.TypeA).Pack()
	oddResp, err := dnswire.Unpack(r.Respond(oddWire))
	if err != nil {
		t.Fatal(err)
	}
	if len(oddResp.Authority) != 1 {
		t.Errorf("junk nonce fanout = %d, want 1", len(oddResp.Authority))
	}
}

// TestTrackerAndMerge pins the ledger arithmetic: per-campaign
// attribution, canonical entry order, positional merge across lanes,
// and the obs counters.
func TestTrackerAndMerge(t *testing.T) {
	s := testSchedule()
	reg := obs.NewRegistry()
	plan, err := Compile(s, 42)
	if err != nil {
		t.Fatal(err)
	}

	lane := func(bots, attacksN, victims int) *Report {
		tr := NewTracker(plan, reg)
		for i := 0; i < bots; i++ {
			tr.AddBot(KindNXNS, 0)
		}
		for i := 0; i < attacksN; i++ {
			tr.Attack(KindNXNS, 0, 30)
		}
		for i := 0; i < victims; i++ {
			tr.Victim(KindFlood, 0, 100)
		}
		return tr.Report()
	}
	r1 := lane(2, 10, 5)
	r2 := lane(1, 4, 3)

	if len(r1.Entries) != 3 {
		t.Fatalf("want 3 canonical entries, got %d", len(r1.Entries))
	}
	if r1.Entries[0].Kind != KindNXNS || r1.Entries[1].Kind != KindFlood || r1.Entries[2].Kind != KindReflect {
		t.Errorf("entry order: %+v", r1.Entries)
	}

	merged := MergeReports(r1, nil, r2)
	nx, fl := merged.Entries[0], merged.Entries[1]
	if nx.Bots != 3 || nx.AttackQueries != 14 || nx.AttackBytes != 14*30 {
		t.Errorf("merged nxns = %+v", nx)
	}
	if fl.VictimQueries != 8 || fl.VictimBytes != 800 {
		t.Errorf("merged flood = %+v", fl)
	}
	if got := nx.AmpQueries(); got != 0 {
		t.Errorf("nxns amp with no victim packets = %v", got)
	}
	if got := fl.AmpQueries(); got != 0 {
		t.Errorf("flood amp with no attack packets = %v", got)
	}

	if MergeReports(nil, nil) != nil {
		t.Error("all-nil merge should stay nil")
	}
	if !reflect.DeepEqual(MergeReports(r1), r1) {
		t.Error("single-report merge should be identity")
	}

	snap := reg.Snapshot()
	if snap.Counter("attacks_attacker_packets_total") != 14 {
		t.Errorf("attacker counter = %d", snap.Counter("attacks_attacker_packets_total"))
	}
	if snap.Counter("attacks_victim_packets_total") != 8 {
		t.Errorf("victim counter = %d", snap.Counter("attacks_victim_packets_total"))
	}
}
