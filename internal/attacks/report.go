package attacks

import (
	"fmt"

	"ritw/internal/obs"
)

// EntryReport is one campaign's traffic ledger: packets the attacker
// spent versus packets (and bytes) the victim absorbed. The
// amplification factor is the ratio.
type EntryReport struct {
	Kind          string
	Index         int
	Bots          int64 // selected bots (NXNS/flood) or reflectors
	AttackQueries int64 // attacker packets in
	AttackBytes   int64
	VictimQueries int64 // victim-side packets out
	VictimBytes   int64
}

// AmpQueries is the packet amplification factor (0 when no attacker
// packets were sent).
func (e EntryReport) AmpQueries() float64 {
	if e.AttackQueries == 0 {
		return 0
	}
	return float64(e.VictimQueries) / float64(e.AttackQueries)
}

// AmpBytes is the bandwidth amplification factor.
func (e EntryReport) AmpBytes() float64 {
	if e.AttackBytes == 0 {
		return 0
	}
	return float64(e.VictimBytes) / float64(e.AttackBytes)
}

// Report is the per-run attack ledger, one entry per campaign in
// canonical schedule order (NXNS, floods, reflections).
type Report struct {
	Entries []EntryReport
}

// MergeReports sums per-lane reports element-wise. Lanes compiled from
// the same schedule produce entries in the same canonical order, so
// alignment is positional. All-nil input merges to nil.
func MergeReports(reports ...*Report) *Report {
	var out *Report
	for _, r := range reports {
		if r == nil {
			continue
		}
		if out == nil {
			out = &Report{Entries: make([]EntryReport, len(r.Entries))}
			copy(out.Entries, r.Entries)
			continue
		}
		for i := range r.Entries {
			if i >= len(out.Entries) {
				out.Entries = append(out.Entries, r.Entries[i])
				continue
			}
			out.Entries[i].Bots += r.Entries[i].Bots
			out.Entries[i].AttackQueries += r.Entries[i].AttackQueries
			out.Entries[i].AttackBytes += r.Entries[i].AttackBytes
			out.Entries[i].VictimQueries += r.Entries[i].VictimQueries
			out.Entries[i].VictimBytes += r.Entries[i].VictimBytes
		}
	}
	return out
}

// Tracker accumulates one lane's attack ledger. It is single-threaded
// like everything else inside a lane; cross-lane aggregation happens
// via Report/MergeReports.
type Tracker struct {
	entries []EntryReport
	index   map[string]int

	mAttack *obs.Counter
	mVictim *obs.Counter
	mBots   *obs.Counter
}

// NewTracker builds a tracker with one slot per campaign of the
// compiled plan, and registers the attacks_* counters.
func NewTracker(p *Plan, metrics *obs.Registry) *Tracker {
	t := &Tracker{
		index:   make(map[string]int),
		mAttack: metrics.Counter("attacks_attacker_packets_total"),
		mVictim: metrics.Counter("attacks_victim_packets_total"),
		mBots:   metrics.Counter("attacks_bots_total"),
	}
	for _, w := range p.Schedule.EventWindows() {
		t.index[entryKey(w.Kind, w.Index)] = len(t.entries)
		t.entries = append(t.entries, EntryReport{Kind: w.Kind, Index: w.Index})
	}
	return t
}

func entryKey(kind string, idx int) string { return fmt.Sprintf("%s/%d", kind, idx) }

func (t *Tracker) slot(kind string, idx int) *EntryReport {
	i, ok := t.index[entryKey(kind, idx)]
	if !ok {
		return nil
	}
	return &t.entries[i]
}

// AddBot records one selected bot (or reflector) for the campaign.
func (t *Tracker) AddBot(kind string, idx int) {
	if e := t.slot(kind, idx); e != nil {
		e.Bots++
		t.mBots.Inc()
	}
}

// Attack records one attacker-origin packet of the given size.
func (t *Tracker) Attack(kind string, idx, bytes int) {
	if e := t.slot(kind, idx); e != nil {
		e.AttackQueries++
		e.AttackBytes += int64(bytes)
		t.mAttack.Inc()
	}
}

// Victim records one victim-side packet of the given size.
func (t *Tracker) Victim(kind string, idx, bytes int) {
	if e := t.slot(kind, idx); e != nil {
		e.VictimQueries++
		e.VictimBytes += int64(bytes)
		t.mVictim.Inc()
	}
}

// Report snapshots the lane's ledger.
func (t *Tracker) Report() *Report {
	if t == nil {
		return nil
	}
	out := &Report{Entries: make([]EntryReport, len(t.entries))}
	copy(out.Entries, t.entries)
	return out
}
