package attacks

import (
	"fmt"
	"strconv"
	"strings"

	"ritw/internal/dnswire"
)

// EvilZone is the attacker-controlled zone NXNS bots query. Runs with
// an NXNS campaign add it to the resolver zone config, delegated to
// the attacker's name-server host.
var EvilZone = dnswire.MustParseName("evil.example")

// Query-name grammar. Every attack query carries its campaign in the
// first label so the victim side can attribute packets without shared
// state:
//
//	nx<idx>b<probe>q<seq>   NXNS bot query (under EvilZone)
//	nf<j>v<nonce>           crafted NS-target fetch (under victim zone)
//	wt<idx>b<probe>n<k>     water-torture query (under victim zone)
//	rf<idx>                 reflection query (under victim zone)

// NXNSQueryLabel is the label a bot queries under EvilZone: a nonce
// unique per (campaign, bot, sequence) so the attacker's referrals are
// never cache-satisfied.
func NXNSQueryLabel(idx, probeID, seq int) string {
	return fmt.Sprintf("nx%db%dq%d", idx, probeID, seq)
}

// FloodLabel is the label a water-torture bot queries under the victim
// zone. pool is the bot's name-pool slot (seq%Names, or seq when the
// pool is unbounded): small pools are what negative caching absorbs.
func FloodLabel(idx, probeID, pool int) string {
	return fmt.Sprintf("wt%db%dn%d", idx, probeID, pool)
}

// ReflectLabel is the label reflection campaign idx queries under the
// victim zone. One fixed name per campaign: after the first
// resolution, reflected responses are served from cache — pure
// reflection bandwidth with no authoritative load.
func ReflectLabel(idx int) string {
	return fmt.Sprintf("rf%d", idx)
}

// referralTargetLabel is the j-th glueless NS name the responder
// delegates to, echoing the query nonce so every fetch misses cache.
func referralTargetLabel(j int, nonce string) string {
	return fmt.Sprintf("nf%dv%s", j, nonce)
}

// Classify attributes a victim-zone query name (presentation or key
// form) to an attack campaign by its first label. Benign measurement
// labels ("p<ID>x<seq>") and anything unparsable return ok=false.
func Classify(qname string) (kind string, idx int, ok bool) {
	label, _, _ := strings.Cut(qname, ".")
	switch {
	case strings.HasPrefix(label, "nf"):
		// nf<j>v<nonce>, nonce = nx<idx>b<probe>q<seq>.
		_, nonce, found := strings.Cut(label[2:], "v")
		if !found || !strings.HasPrefix(nonce, "nx") {
			return "", 0, false
		}
		n, rest := leadingInt(nonce[2:])
		if rest == "" || rest[0] != 'b' {
			return "", 0, false
		}
		return KindNXNS, n, true
	case strings.HasPrefix(label, "wt"):
		n, rest := leadingInt(label[2:])
		if rest == "" || rest[0] != 'b' {
			return "", 0, false
		}
		return KindFlood, n, true
	case strings.HasPrefix(label, "rf"):
		n, rest := leadingInt(label[2:])
		if rest != "" {
			return "", 0, false
		}
		return KindReflect, n, true
	}
	return "", 0, false
}

// leadingInt splits label into its leading decimal run and the rest.
// A missing run returns rest = "" so callers fail closed.
func leadingInt(s string) (int, string) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, ""
	}
	n, err := strconv.Atoi(s[:i])
	if err != nil {
		return 0, ""
	}
	return n, s[i:]
}

// ReferralResponder is the attacker's name server: a stateless
// handler that answers every query for its zone with a crafted
// glueless referral — fanout NS records whose targets sit under the
// victim zone and echo the query nonce. No RNG, no state: the
// response is a pure function of the query, which is what keeps
// attacker behaviour identical across shard layouts.
type ReferralResponder struct {
	Zone    dnswire.Name // the attacker zone (EvilZone)
	Victim  dnswire.Name // zone whose authoritatives the fetches hit
	Fanouts []int        // referral set size per NXNS campaign index
}

// fanoutFor picks the campaign's fanout from the query nonce
// ("nx<idx>b..."); unparsable or out-of-range labels get 1, so junk
// queries still receive a harmless minimal referral.
func (r *ReferralResponder) fanoutFor(nonce string) int {
	if strings.HasPrefix(nonce, "nx") {
		if idx, rest := leadingInt(nonce[2:]); rest != "" && rest[0] == 'b' && idx < len(r.Fanouts) {
			return r.Fanouts[idx]
		}
	}
	return 1
}

// Respond builds the referral for one query payload, or nil for
// anything that is not a plain query (responses, junk, foreign zones).
func (r *ReferralResponder) Respond(payload []byte) []byte {
	msg, err := dnswire.Unpack(payload)
	if err != nil || msg.Response {
		return nil
	}
	q, ok := msg.Question()
	if !ok || !q.Name.IsSubdomainOf(r.Zone) {
		return nil
	}
	resp, err := dnswire.NewResponse(msg)
	if err != nil {
		return nil
	}
	labels := q.Name.Labels()
	nonce := "x"
	if len(labels) > 0 {
		nonce = strings.ToLower(labels[0])
	}
	for j := 0; j < r.fanoutFor(nonce); j++ {
		target, err := r.Victim.Child(referralTargetLabel(j, nonce))
		if err != nil {
			continue
		}
		resp.Authority = append(resp.Authority, dnswire.RR{
			Name:  q.Name,
			Class: dnswire.ClassINET,
			TTL:   300,
			Data:  dnswire.NS{Host: target},
		})
	}
	out, err := resp.Pack()
	if err != nil {
		return nil
	}
	return out
}
