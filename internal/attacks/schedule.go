// Package attacks models *traffic* adversaries against the measured
// DNS system — the counterpart of internal/faults, which models
// infrastructure failures. A declarative Schedule describes when and
// how hard each attack runs; Compile pins every stochastic choice
// (which VPs are bots, per-bot phases, which resolvers reflect) to
// entity-keyed hashes of the run seed, so the same seed + schedule
// produces byte-identical traffic at any shard/worker/scheduler
// layout — exactly the contract the fault injector established.
//
// Three attack families from the NXNSAttack literature (PAPERS.md):
//
//   - NXNS: bots query an attacker-controlled zone whose name server
//     answers every query with a crafted glueless referral — Fanout NS
//     names under the *victim* zone, each derived from the query nonce
//     so no fetch is ever cache-satisfied. An undefended resolver
//     fans out against the victim's authoritatives once per NS name;
//     the MaxFetch defense caps that fan-out per client query.
//   - Flood: water torture — bots spray random-subdomain queries at
//     the victim zone through their resolver. A small per-bot name
//     pool makes RFC 2308 negative caching the effective defense.
//   - Reflection: an off-path attacker sends queries with a spoofed
//     source (the victim) to open resolvers; the responses — larger
//     than the queries — land on the victim.
package attacks

import (
	"fmt"
	"time"
)

// NXNS is one delegation-amplification campaign.
type NXNS struct {
	Start, End time.Duration // active window in run time
	Interval   time.Duration // per-bot query pacing
	Fraction   float64       // fraction of VPs acting as bots, (0, 1]
	Fanout     int           // glueless NS names per crafted referral
}

// Flood is one water-torture (random-subdomain) campaign.
type Flood struct {
	Start, End time.Duration
	Interval   time.Duration // per-bot query pacing
	Fraction   float64       // fraction of VPs acting as bots, (0, 1]
	Names      int           // per-bot name-pool size; 0 = every query unique
}

// Reflection is one spoofed-source reflection campaign.
type Reflection struct {
	Start, End time.Duration
	Interval   time.Duration // per-reflector query pacing
	Fraction   float64       // fraction of resolvers abused as reflectors, (0, 1]
}

// Schedule is a declarative set of attack campaigns for one run. The
// zero value (and nil) mean "no attacks".
type Schedule struct {
	NXNS        []NXNS
	Floods      []Flood
	Reflections []Reflection
}

// Empty reports whether the schedule (which may be nil) has no
// campaigns, so callers can skip attack setup entirely — an attack-free
// run must be byte-identical to one that never imported this package.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.NXNS) == 0 && len(s.Floods) == 0 && len(s.Reflections) == 0)
}

func checkWindow(kind string, idx int, start, end, interval time.Duration, frac float64) error {
	if start < 0 || end <= start {
		return fmt.Errorf("attacks: %s[%d]: bad window [%v, %v)", kind, idx, start, end)
	}
	if interval <= 0 {
		return fmt.Errorf("attacks: %s[%d]: interval must be positive, got %v", kind, idx, interval)
	}
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("attacks: %s[%d]: fraction %g outside (0, 1]", kind, idx, frac)
	}
	return nil
}

// Validate checks every campaign for sane windows, pacing and
// fractions. A nil schedule is valid.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, a := range s.NXNS {
		if err := checkWindow(KindNXNS, i, a.Start, a.End, a.Interval, a.Fraction); err != nil {
			return err
		}
		if a.Fanout < 1 {
			return fmt.Errorf("attacks: nxns[%d]: fanout must be >= 1, got %d", i, a.Fanout)
		}
	}
	for i, a := range s.Floods {
		if err := checkWindow(KindFlood, i, a.Start, a.End, a.Interval, a.Fraction); err != nil {
			return err
		}
		if a.Names < 0 {
			return fmt.Errorf("attacks: flood[%d]: names must be >= 0, got %d", i, a.Names)
		}
	}
	for i, a := range s.Reflections {
		if err := checkWindow(KindReflect, i, a.Start, a.End, a.Interval, a.Fraction); err != nil {
			return err
		}
	}
	return nil
}

// EventWindow is one campaign's active window, for impact tables.
type EventWindow struct {
	Kind       string
	Index      int
	Start, End time.Duration
}

// EventWindows lists every campaign window in canonical schedule order
// (NXNS, then floods, then reflections — the same order Report entries
// use).
func (s *Schedule) EventWindows() []EventWindow {
	if s == nil {
		return nil
	}
	var out []EventWindow
	for i, a := range s.NXNS {
		out = append(out, EventWindow{KindNXNS, i, a.Start, a.End})
	}
	for i, a := range s.Floods {
		out = append(out, EventWindow{KindFlood, i, a.Start, a.End})
	}
	for i, a := range s.Reflections {
		out = append(out, EventWindow{KindReflect, i, a.Start, a.End})
	}
	return out
}

// Describe renders one human-readable line per campaign, in canonical
// order, for scenario output and goldens.
func (s *Schedule) Describe() []string {
	if s == nil {
		return nil
	}
	var out []string
	for _, a := range s.NXNS {
		out = append(out, fmt.Sprintf("nxns [%v, %v) every %v, bots %.0f%% of VPs, fanout %d",
			a.Start, a.End, a.Interval, a.Fraction*100, a.Fanout))
	}
	for _, a := range s.Floods {
		pool := "unique names"
		if a.Names > 0 {
			pool = fmt.Sprintf("%d-name pool", a.Names)
		}
		out = append(out, fmt.Sprintf("flood [%v, %v) every %v, bots %.0f%% of VPs, %s",
			a.Start, a.End, a.Interval, a.Fraction*100, pool))
	}
	for _, a := range s.Reflections {
		out = append(out, fmt.Sprintf("reflect [%v, %v) every %v via %.0f%% of resolvers",
			a.Start, a.End, a.Interval, a.Fraction*100))
	}
	return out
}

// Defenses is the resolver-side defense matrix for one run. The zero
// value is the *measurement default*: negative caching on (it is part
// of RFC-faithful resolver behaviour) and no referral fetch budget.
type Defenses struct {
	// MaxFetch caps glueless NS-target fetches spawned per client
	// query, the NXNSAttack "MaxFetch" defense. 0 = undefended (only
	// the resolver's hard safety cap applies).
	MaxFetch int
	// NoNegativeCache disables RFC 2308 negative caching, exposing the
	// authoritatives to the full water-torture load.
	NoNegativeCache bool
}

// Describe renders the defense matrix as one line for scenario output.
func (d Defenses) Describe() string {
	fetch := "maxfetch off"
	if d.MaxFetch > 0 {
		fetch = fmt.Sprintf("maxfetch %d", d.MaxFetch)
	}
	neg := "negcache on"
	if d.NoNegativeCache {
		neg = "negcache off"
	}
	return fetch + ", " + neg
}
