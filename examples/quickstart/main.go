// The quickstart example runs one paper-style measurement (combination
// 2C: Frankfurt vs Sydney) on the simulated Internet and prints the
// headline findings: most recursives probe every authoritative, query
// share follows latency, and a large fraction of recursives develop a
// preference for the nearer site.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ritw/internal/analysis"
	"ritw/internal/core"
	"ritw/internal/geo"
)

func main() {
	fmt.Println("Running combination 2C (FRA + SYD), 1 virtual hour, 2-minute probing...")
	ds, err := core.RunCombinationContext(context.Background(), "2C",
		core.WithSeed(1), core.WithScale(core.ScaleSmall))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n\n", ds.Summary())

	probeAll := analysis.ProbeAll(ds)
	fmt.Printf("Do recursives query all authoritatives? (Figure 2)\n")
	fmt.Printf("  %.1f%% of %d vantage points reached both sites;\n",
		probeAll.PercentAll, probeAll.VPs)
	fmt.Printf("  median %.0f extra queries to see both (p90 %.0f)\n\n",
		probeAll.Box.Median, probeAll.Box.P90)

	fmt.Println("How are queries distributed? (Figure 3)")
	for _, s := range analysis.ShareVsRTT(ds) {
		fmt.Printf("  %s: median RTT %.0f ms -> %.0f%% of queries\n",
			s.Site, s.MedianRTT, 100*s.Share)
	}
	fmt.Println()

	pref := analysis.Preference(ds)
	fmt.Println("Per-recursive preference (Figure 4, VPs with a >=50 ms RTT gap):")
	fmt.Printf("  weak (>=60%% to one site):   %.0f%%\n", 100*pref.WeakFrac)
	fmt.Printf("  strong (>=90%% to one site): %.0f%%\n\n", 100*pref.StrongFrac)

	t2 := analysis.Table2(ds)
	fmt.Println("Per-continent split (Table 2):")
	for _, cont := range geo.Continents() {
		cells, ok := t2[cont]
		if !ok {
			continue
		}
		fmt.Printf("  %s: FRA %.0f%% (%.0f ms)  SYD %.0f%% (%.0f ms)\n", cont,
			cells["FRA"].SharePct, cells["FRA"].MedianRTT,
			cells["SYD"].SharePct, cells["SYD"].MedianRTT)
	}
	fmt.Println("\nEuropean recursives favour Frankfurt; Oceania favours Sydney —")
	fmt.Println("the paper's core observation, regenerated in seconds.")
}
