// The rootwatch example synthesizes a DITL-style hour of Root DNS
// traffic (the paper's §5 validation) and prints how production
// recursives spread their queries across the root letters — the
// Figure 7 picture: many recursives concentrate on few letters, a
// notable group uses exactly one, and almost nobody uses all of them.
//
//	go run ./examples/rootwatch
package main

import (
	"fmt"
	"log"
	"sort"

	"ritw/internal/core"
)

func main() {
	fmt.Println("Synthesizing one hour of root-letter traffic (10 of 13 letters observed)...")
	trace, bands, err := core.RunRootTrace(99, core.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d queries from %d recursives\n\n", trace.TotalQueries, trace.Recursives)

	// Aggregate letter popularity.
	type letterCount struct {
		name string
		n    int
	}
	var letters []letterCount
	for name, byRec := range trace.Counts {
		total := 0
		for _, n := range byRec {
			total += n
		}
		letters = append(letters, letterCount{name, total})
	}
	sort.Slice(letters, func(i, j int) bool { return letters[i].n > letters[j].n })
	fmt.Println("Letter popularity (captured queries):")
	for _, lc := range letters {
		fmt.Printf("  %-7s %7d\n", lc.name, lc.n)
	}

	fmt.Printf("\nBusy recursives (>=250 queries/hour): %d\n", bands.Recursives)
	fmt.Printf("  use exactly one letter: %5.1f%%   (paper: ~20%%)\n", 100*bands.OnlyOne)
	fmt.Printf("  use at least 6 letters: %5.1f%%   (paper: ~60%%)\n", 100*bands.AtLeast6)
	fmt.Printf("  use all 10 letters:     %5.1f%%   (paper: ~2%%)\n", 100*bands.All)
	fmt.Printf("  mean top-letter share:  %5.2f\n", bands.MeanTopShare)

	// The per-recursive rank bands of Figure 7, as a text "plot": the
	// mean share of each rank among busy recursives.
	per := trace.PerRecursive()
	rankSums := make([]float64, len(trace.Observed))
	busy := 0
	for _, byServer := range per {
		total := 0
		var counts []int
		for _, n := range byServer {
			total += n
			counts = append(counts, n)
		}
		if total < 250 {
			continue
		}
		busy++
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		for i, n := range counts {
			if i < len(rankSums) {
				rankSums[i] += float64(n) / float64(total)
			}
		}
	}
	if busy > 0 {
		fmt.Println("\nMean query share by letter rank (Figure 7's bands):")
		for i, s := range rankSums {
			share := s / float64(busy)
			if share < 0.005 {
				break
			}
			bar := int(share * 60)
			fmt.Printf("  rank %2d %5.1f%% %s\n", i+1, 100*share, repeat('#', bar))
		}
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
