// The livewire example runs the whole stack on real loopback sockets:
// two authoritative servers with different injected latencies (a
// nearby "FRA" and a faraway "SYD"), a recursive resolver with a
// selectable policy, and a stub client. It then shows how the
// latency-aware policy concentrates queries on the fast site while a
// uniform policy splits evenly — the paper's §4 contrast, live.
//
// It binds 127.0.0.1 (resolver/client), 127.0.0.2 and 127.0.0.3
// (authoritatives); all of 127/8 is loopback on Linux.
//
//	go run ./examples/livewire
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/netip"
	"time"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/measure"
	"ritw/internal/resolver"
	"ritw/internal/zone"
)

// delayedAuth is a minimal UDP front end that injects one-way latency
// before handing queries to an authoritative engine, turning loopback
// into a two-site world.
type delayedAuth struct {
	engine *authserver.Engine
	delay  time.Duration
	conn   *net.UDPConn
}

func startAuth(addr, site string, delay time.Duration) (*delayedAuth, netip.AddrPort, error) {
	combo, err := measure.CombinationByID("2C")
	if err != nil {
		return nil, netip.AddrPort{}, err
	}
	z, err := zone.ParseString(measure.ZoneText(combo, site), dnswire.Root)
	if err != nil {
		return nil, netip.AddrPort{}, err
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, netip.AddrPort{}, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, netip.AddrPort{}, err
	}
	a := &delayedAuth{
		engine: authserver.NewEngine(authserver.Config{Zones: []*zone.Zone{z}, Identity: site}),
		delay:  delay,
		conn:   conn,
	}
	go a.serve()
	local := conn.LocalAddr().(*net.UDPAddr)
	ap := netip.AddrPortFrom(netip.MustParseAddr(local.IP.String()), uint16(local.Port))
	return a, ap, nil
}

func (a *delayedAuth) serve() {
	buf := make([]byte, 65535)
	for {
		n, raddr, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		src, _ := netip.AddrFromSlice(raddr.IP)
		go func(raddr *net.UDPAddr) {
			time.Sleep(a.delay) // one-way "distance"
			if resp := a.engine.HandleQuery(src.Unmap(), pkt, 0); len(resp) > 0 {
				time.Sleep(a.delay)
				a.conn.WriteToUDP(resp, raddr)
			}
		}(raddr)
	}
}

func main() {
	fra, fraAP, err := startAuth("127.0.0.2:0", "FRA", 5*time.Millisecond)
	if err != nil {
		log.Fatalf("livewire: FRA auth: %v (does this system allow binding 127.0.0.2?)", err)
	}
	defer fra.conn.Close()
	syd, sydAP, err := startAuth("127.0.0.3:0", "SYD", 80*time.Millisecond)
	if err != nil {
		log.Fatalf("livewire: SYD auth: %v", err)
	}
	defer syd.conn.Close()
	fmt.Printf("authoritatives: FRA at %s (~10ms RTT), SYD at %s (~160ms RTT)\n\n", fraAP, sydAP)

	for _, kind := range []resolver.PolicyKind{resolver.KindBINDLike, resolver.KindUniform} {
		counts, err := runResolver(kind, fraAP, sydAP, 40)
		if err != nil {
			log.Fatalf("livewire: %v", err)
		}
		fmt.Printf("policy %-9s -> FRA %2d queries, SYD %2d queries\n",
			kind, counts["FRA"], counts["SYD"])
	}
	fmt.Println("\nThe latency-aware resolver concentrates on the fast site;")
	fmt.Println("the uniform one spreads evenly — over real UDP sockets.")
}

// runResolver stands up resolvd's engine on a fresh socket, issues n
// stub queries through it, and tallies which site answered each.
func runResolver(kind resolver.PolicyKind, fra, syd netip.AddrPort, n int) (map[string]int, error) {
	srv, err := resolver.NewUDPServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	srv.Route(fra.Addr(), fra.Port())
	srv.Route(syd.Addr(), syd.Port())

	eng := resolver.NewEngine(resolver.Config{
		Policy: resolver.NewPolicy(kind),
		Infra:  resolver.NewInfraCache(10*time.Minute, resolver.DecayKeep),
		Cache:  resolver.NewRecordCache(),
		Zones: []resolver.ZoneServers{{
			Zone:    measure.TestDomain,
			Servers: []netip.Addr{fra.Addr(), syd.Addr()},
		}},
		Transport: srv,
		Clock:     &resolver.RealClock{},
		RNG:       rand.New(rand.NewSource(7)),
		Timeout:   time.Second,
	})
	go srv.Serve(eng)

	client, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		return nil, err
	}
	defer client.Close()

	counts := map[string]int{}
	buf := make([]byte, 4096)
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("live-%s-%d", kind, i)
		qname, err := measure.TestDomain.Child(label)
		if err != nil {
			return nil, err
		}
		q := dnswire.NewQuery(uint16(i), qname, dnswire.TypeTXT)
		wire, err := q.Pack()
		if err != nil {
			return nil, err
		}
		if _, err := client.Write(wire); err != nil {
			return nil, err
		}
		client.SetReadDeadline(time.Now().Add(2 * time.Second))
		m, err := client.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		resp, err := dnswire.Unpack(buf[:m])
		if err != nil {
			return nil, err
		}
		if len(resp.Answers) == 1 {
			if txt, ok := resp.Answers[0].Data.(dnswire.TXT); ok {
				site := txt.Joined()
				counts[site[len("site="):]]++
			}
		}
	}
	return counts, nil
}
