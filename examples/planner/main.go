// The planner example applies the paper's §7 recommendation engine to
// the .nl case study: it evaluates the current architecture (five
// unicast authoritatives in the Netherlands plus three anycast
// services), shows that worst-case latency is limited by the least
// anycast authoritative, and quantifies the gain from making every
// authoritative anycast.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"

	"ritw/internal/core"
	"ritw/internal/geo"
)

func main() {
	cfg := core.DefaultPlannerConfig()
	fmt.Printf("Recursive mixture: %.0f%% latency-aware, %.0f%% spread across all NSes\n\n",
		100*cfg.LatencyAwareShare, 100*(1-cfg.LatencyAwareShare))

	current, err := core.Evaluate(core.NLCurrent(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(current.String())
	fmt.Println()

	allAnycast, err := core.Evaluate(core.NLAllAnycast(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(allAnycast.String())
	fmt.Println()

	naShare, err := core.QueriesFromRegionShare(core.NLCurrent(), "ns1", geo.NorthAmerica, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Case study: %.0f%% of the queries arriving at unicast ns1 (Amsterdam)\n", 100*naShare)
	fmt.Println("come from North America (the paper reports 23% from the U.S.) — clients")
	fmt.Println("that an anycast site would serve far faster.")
	fmt.Println()

	gain := current.MeanLatency - allAnycast.MeanLatency
	fmt.Printf("Making every authoritative anycast cuts expected latency by %.0f ms\n", gain)
	fmt.Printf("and the worst-authoritative bound from %.0f ms to %.0f ms.\n",
		current.WorstAuthMean, allAnycast.WorstAuthMean)
	fmt.Println("\n=> \"if some authoritatives in a server system are anycast, all should be.\"")
}
