// The failover example injects a site failure into a running
// measurement — the scenario behind the paper's §7 "Other
// Considerations" (anycast and multiple authoritatives as DDoS and
// fault-tolerance measures, citing the Nov 2015 Root DNS event). It
// shows recursives failing over to the surviving authoritative within
// their retry budget, and drifting back after recovery.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/atlas"
	"ritw/internal/measure"
)

func main() {
	combo, err := measure.CombinationByID("2B")
	if err != nil {
		log.Fatal(err)
	}
	start, end := 20*time.Minute, 40*time.Minute
	cfg := measure.DefaultRunConfig(combo, 7)
	pc := atlas.DefaultConfig(7)
	pc.NumProbes = 1200
	cfg.Population = pc
	cfg.Outage = &measure.Outage{Site: "FRA", Start: start, End: end}

	fmt.Printf("Running 2B (DUB + FRA) with FRA down from %v to %v...\n\n", start, end)
	ds, err := measure.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	impact := analysis.OutageImpactOf(ds, "FRA", start, end)
	rows := []struct {
		name string
		w    analysis.WindowStats
	}{
		{"before", impact.Before},
		{"during", impact.During},
		{"after", impact.After},
	}
	fmt.Printf("%-8s %8s %10s %11s %12s\n", "window", "queries", "FRA share", "fail rate", "median RTT")
	for _, r := range rows {
		fmt.Printf("%-8s %8d %9.0f%% %10.1f%% %10.0fms\n",
			r.name, r.w.Queries, 100*r.w.SiteShare, 100*r.w.FailRate, r.w.MedianRTT)
	}

	fmt.Println("\nDuring the outage every answered query comes from Dublin: the")
	fmt.Println("resolvers' timeout-and-retry logic absorbs the failure at the cost")
	fmt.Println("of extra latency, and Frankfurt wins its traffic back afterwards.")
	fmt.Println("This is why operators run multiple authoritatives — and why the")
	fmt.Println("paper wants each of them strong enough to take the load.")
}
