module ritw

go 1.22
