// Benchmark harness: one benchmark per table and figure of the paper,
// plus ablations of the design choices DESIGN.md calls out. Each
// benchmark regenerates its artifact and reports the headline numbers
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction run. Expensive dataset synthesis is
// shared across benchmarks and excluded from timed sections where the
// benchmark targets the analysis.
package ritw_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/atlas"
	"ritw/internal/core"
	"ritw/internal/ditl"
	"ritw/internal/geo"
	"ritw/internal/measure"
	"ritw/internal/resolver"
)

const benchSeed = 2017

// benchDatasets lazily runs all Table-1 combinations once at small
// scale and shares them across benchmarks.
var (
	benchOnce sync.Once
	benchDS   map[string]*measure.Dataset
	benchErr  error
)

func datasets(b *testing.B) map[string]*measure.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		// Shared setup, not a timed section: fan out across cores.
		benchDS, benchErr = core.RunTable1Context(context.Background(),
			core.WithSeed(benchSeed), core.WithScale(core.ScaleSmall))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

// BenchmarkTable1Combinations measures the full Table-1 batch — all
// seven combinations, each a population synthesis plus one virtual
// hour of traffic — through the Runner. The serial and parallel
// sub-benchmarks differ only in pool width, so their time ratio is the
// orchestration speedup on this host; the datasets are byte-identical
// either way (per-seed determinism). Reports the Table-1 row: active
// VPs per run.
func BenchmarkTable1Combinations(b *testing.B) {
	run := func(b *testing.B, extra ...core.Option) {
		var probes int
		for i := 0; i < b.N; i++ {
			opts := append([]core.Option{
				core.WithSeed(benchSeed + int64(i)),
				core.WithScale(core.ScaleSmall),
			}, extra...)
			dss, err := core.RunTable1Context(context.Background(), opts...)
			if err != nil {
				b.Fatal(err)
			}
			probes = dss["2B"].ActiveProbes
		}
		b.ReportMetric(float64(probes), "VPs")
	}
	b.Run("serial", func(b *testing.B) { run(b, core.WithParallelism(1)) })
	b.Run("parallel", func(b *testing.B) { run(b) })
}

// BenchmarkFigure2ProbeAll regenerates Figure 2 (queries to probe all
// authoritatives) and reports the 2-NS and 4-NS coverage percentages.
func BenchmarkFigure2ProbeAll(b *testing.B) {
	dss := datasets(b)
	var pct2, pct4, median4 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2 := analysis.ProbeAll(dss["2B"])
		r4 := analysis.ProbeAll(dss["4B"])
		pct2, pct4, median4 = r2.PercentAll, r4.PercentAll, r4.Box.Median
	}
	b.ReportMetric(pct2, "%all-2B")
	b.ReportMetric(pct4, "%all-4B")
	b.ReportMetric(median4, "median-queries-4B")
}

// BenchmarkFigure3ShareVsRTT regenerates Figure 3 and reports the
// share of the lowest-latency site in 2C (FRA, which "always sees most
// queries overall").
func BenchmarkFigure3ShareVsRTT(b *testing.B) {
	dss := datasets(b)
	var fraShare, fraRTT float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range analysis.ShareVsRTT(dss["2C"]) {
			if s.Site == "FRA" {
				fraShare, fraRTT = s.Share, s.MedianRTT
			}
		}
	}
	b.ReportMetric(fraShare, "FRA-share")
	b.ReportMetric(fraRTT, "FRA-rtt-ms")
}

// BenchmarkFigure4Preference regenerates Figure 4's preference bands
// (paper: weak 61/59/69%, strong 10/12/37% for 2A/2B/2C).
func BenchmarkFigure4Preference(b *testing.B) {
	dss := datasets(b)
	var weak2C, strong2C, strong2B float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p2c := analysis.Preference(dss["2C"])
		p2b := analysis.Preference(dss["2B"])
		weak2C, strong2C, strong2B = p2c.WeakFrac, p2c.StrongFrac, p2b.StrongFrac
	}
	b.ReportMetric(100*weak2C, "%weak-2C")
	b.ReportMetric(100*strong2C, "%strong-2C")
	b.ReportMetric(100*strong2B, "%strong-2B")
}

// BenchmarkTable2ContinentShare regenerates Table 2 and reports the
// EU row of 2C (paper: 83% FRA at 39 ms, 17% SYD at 355 ms).
func BenchmarkTable2ContinentShare(b *testing.B) {
	dss := datasets(b)
	var euFRA, euFRARtt, euSYDRtt float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 := analysis.Table2(dss["2C"])
		eu := t2[geo.Europe]
		euFRA = eu["FRA"].SharePct
		euFRARtt = eu["FRA"].MedianRTT
		euSYDRtt = eu["SYD"].MedianRTT
	}
	b.ReportMetric(euFRA, "%EU-to-FRA")
	b.ReportMetric(euFRARtt, "EU-FRA-rtt-ms")
	b.ReportMetric(euSYDRtt, "EU-SYD-rtt-ms")
}

// BenchmarkFigure5RTTSensitivity regenerates Figure 5 (preference
// fades when both sites are far). Reports the EU and AS preference
// spreads in 2B; the paper's point is EU ≫ AS.
func BenchmarkFigure5RTTSensitivity(b *testing.B) {
	dss := datasets(b)
	var euSpread, asSpread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := analysis.RTTSensitivity(dss["2B"])
		frac := map[geo.Continent]map[string]float64{}
		for _, p := range points {
			if frac[p.Continent] == nil {
				frac[p.Continent] = map[string]float64{}
			}
			frac[p.Continent][p.Site] = p.Fraction
		}
		euSpread = abs(frac[geo.Europe]["FRA"] - frac[geo.Europe]["DUB"])
		asSpread = abs(frac[geo.Asia]["FRA"] - frac[geo.Asia]["DUB"])
	}
	b.ReportMetric(euSpread, "EU-spread")
	b.ReportMetric(asSpread, "AS-spread")
}

// BenchmarkFigure6IntervalSweep regenerates Figure 6: one full 2C
// measurement per probing interval (2 and 30 minutes here; cmd/ritw
// runs all six), fanned out by the Runner in the parallel variant.
// Reports the EU share to FRA at both cadences.
func BenchmarkFigure6IntervalSweep(b *testing.B) {
	intervals := []time.Duration{2 * time.Minute, 30 * time.Minute}
	run := func(b *testing.B, extra ...core.Option) {
		var fast, slow float64
		for i := 0; i < b.N; i++ {
			opts := append([]core.Option{
				core.WithSeed(benchSeed + int64(i)),
				core.WithScale(core.ScaleSmall),
			}, extra...)
			dss, err := core.RunIntervalSweepContext(context.Background(), intervals, opts...)
			if err != nil {
				b.Fatal(err)
			}
			fast = analysis.SiteShareByContinent(dss[0], "FRA")[geo.Europe]
			slow = analysis.SiteShareByContinent(dss[1], "FRA")[geo.Europe]
		}
		b.ReportMetric(fast, "EU-FRA@2min")
		b.ReportMetric(slow, "EU-FRA@30min")
	}
	b.Run("serial", func(b *testing.B) { run(b, core.WithParallelism(1)) })
	b.Run("parallel", func(b *testing.B) { run(b) })
}

// BenchmarkFigure7Root regenerates Figure 7 (top): a DITL-style root
// hour and its rank bands (paper: ~20% one letter, ~60% >=6, ~2% all).
func BenchmarkFigure7Root(b *testing.B) {
	var bands analysis.RankBands
	for i := 0; i < b.N; i++ {
		_, rb, err := core.RunRootTrace(benchSeed+int64(i), core.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		bands = rb
	}
	b.ReportMetric(100*bands.OnlyOne, "%one-letter")
	b.ReportMetric(100*bands.AtLeast6, "%ge6-letters")
	b.ReportMetric(100*bands.All, "%all-letters")
}

// BenchmarkFigure7NL regenerates Figure 7 (bottom): the .nl hour
// (paper: the majority of recursives query all 4 observed NSes).
func BenchmarkFigure7NL(b *testing.B) {
	var bands analysis.RankBands
	for i := 0; i < b.N; i++ {
		_, rb, err := core.RunNLTrace(benchSeed+int64(i), core.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		bands = rb
	}
	b.ReportMetric(100*bands.All, "%all-4")
	b.ReportMetric(100*bands.OnlyOne, "%one-NS")
}

// BenchmarkMiddleboxComparison regenerates the §3.1 check: the
// authoritative-side preference view tracks the client-side one.
func BenchmarkMiddleboxComparison(b *testing.B) {
	dss := datasets(b)
	var clientWeak, authWeak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clientWeak = analysis.Preference(dss["2A"]).WeakFrac
		aw, _, _ := analysis.AuthSidePreference(dss["2A"], 5)
		authWeak = aw
	}
	b.ReportMetric(clientWeak, "client-weak")
	b.ReportMetric(authWeak, "auth-weak")
}

// BenchmarkIPv6Subset regenerates the §3.1 IPv6 validation: the
// IPv6-capable subset shows the same selection strategies.
func BenchmarkIPv6Subset(b *testing.B) {
	var weak float64
	for i := 0; i < b.N; i++ {
		combo, err := measure.CombinationByID("2B")
		if err != nil {
			b.Fatal(err)
		}
		cfg := measure.DefaultRunConfig(combo, benchSeed)
		pc := atlas.DefaultConfig(benchSeed)
		pc.NumProbes = core.ScaleSmall.Probes()
		cfg.Population = pc
		cfg.IPv6Subset = true
		ds, err := measure.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		weak = analysis.Preference(ds).WeakFrac
	}
	b.ReportMetric(weak, "v6-weak")
}

// BenchmarkPreferenceHardening regenerates the §4.3 time-split check:
// weak preferences strengthen in the second half hour.
func BenchmarkPreferenceHardening(b *testing.B) {
	dss := datasets(b)
	var h analysis.HardeningResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = analysis.PreferenceHardening(dss["2C"])
	}
	b.ReportMetric(h.FirstHalf, "first-half")
	b.ReportMetric(h.SecondHalf, "second-half")
}

// BenchmarkPlannerLeastAnycast regenerates the §7 analysis: the
// all-anycast .nl beats the mixed deployment on both mean latency and
// the worst-authoritative bound.
func BenchmarkPlannerLeastAnycast(b *testing.B) {
	var mixedWorst, anyWorst, gain float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultPlannerConfig()
		cur, err := core.Evaluate(core.NLCurrent(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		all, err := core.Evaluate(core.NLAllAnycast(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		mixedWorst, anyWorst = cur.WorstAuthMean, all.WorstAuthMean
		gain = cur.MeanLatency - all.MeanLatency
	}
	b.ReportMetric(mixedWorst, "mixed-worst-ms")
	b.ReportMetric(anyWorst, "anycast-worst-ms")
	b.ReportMetric(gain, "gain-ms")
}

// --- Ablations (DESIGN.md §5) ---

// AblationResolverMixture: an all-uniform population cannot reproduce
// the paper's strong-preference band; the calibrated mixture can.
func BenchmarkAblationResolverMixture(b *testing.B) {
	var mixedStrong, uniformStrong float64
	for i := 0; i < b.N; i++ {
		combo, err := measure.CombinationByID("2C")
		if err != nil {
			b.Fatal(err)
		}
		run := func(mix []atlas.PolicyShare) float64 {
			cfg := measure.DefaultRunConfig(combo, benchSeed)
			pc := atlas.DefaultConfig(benchSeed)
			pc.NumProbes = 600
			pc.Mix = mix
			cfg.Population = pc
			ds, err := measure.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return analysis.Preference(ds).StrongFrac
		}
		mixedStrong = run(nil) // calibrated default
		uniformStrong = run([]atlas.PolicyShare{{
			Kind: resolver.KindUniform, Share: 1, InfraTTL: 10 * time.Minute,
		}})
	}
	b.ReportMetric(100*mixedStrong, "%strong-calibrated")
	b.ReportMetric(100*uniformStrong, "%strong-alluniform")
}

// AblationInfraRetention: with hard infrastructure-cache expiry
// everywhere, Figure 6's preference persistence at 30-minute probing
// disappears; decay-and-keep retention preserves it.
func BenchmarkAblationInfraRetention(b *testing.B) {
	var keep, hard float64
	for i := 0; i < b.N; i++ {
		combo, err := measure.CombinationByID("2C")
		if err != nil {
			b.Fatal(err)
		}
		run := func(retention resolver.Retention) float64 {
			mix := atlas.DefaultMix()
			for j := range mix {
				mix[j].Retention = retention
			}
			cfg := measure.DefaultRunConfig(combo, benchSeed)
			cfg.Interval = 30 * time.Minute
			pc := atlas.DefaultConfig(benchSeed)
			pc.NumProbes = 600
			pc.Mix = mix
			cfg.Population = pc
			ds, err := measure.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return analysis.SiteShareByContinent(ds, "FRA")[geo.Europe]
		}
		keep = run(resolver.DecayKeep)
		hard = run(resolver.HardExpire)
	}
	b.ReportMetric(keep, "EU-FRA-decaykeep")
	b.ReportMetric(hard, "EU-FRA-hardexpire")
}

// AblationPathVariance: the distance scaling of route-stretch variance
// (plus distance-proportional jitter) is what makes faraway
// preferences fade (Figure 5). With flat variance and flat jitter,
// Asian vantage points in 2B see a predictable FRA/DUB ordering and
// develop a systematic continental preference — the fade disappears.
func BenchmarkAblationPathVariance(b *testing.B) {
	var scaledAS, flatAS float64
	for i := 0; i < b.N; i++ {
		run := func(model *geo.PathModel) float64 {
			combo, err := measure.CombinationByID("2B")
			if err != nil {
				b.Fatal(err)
			}
			cfg := measure.DefaultRunConfig(combo, benchSeed)
			pc := atlas.DefaultConfig(benchSeed)
			pc.NumProbes = 600
			cfg.Population = pc
			cfg.PathModel = model
			ds, err := measure.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			shares := analysis.SiteShareByContinent(ds, "FRA")
			return abs(shares[geo.Asia] - 0.5)
		}
		scaledAS = run(nil)
		flat := geo.DefaultPathModel()
		flat.FlatStretchSigma = true
		flat.StretchSigma = 0.05 // predictable routes
		flat.JitterSlope = 0
		flat.JitterBaseMs = 3
		flatAS = run(&flat)
	}
	b.ReportMetric(scaledAS, "AS-spread-scaled")
	b.ReportMetric(flatAS, "AS-spread-flat")
}

// AblationOutage: the failure-injection experiment behind §7's
// resilience argument — resolvers fail over to the surviving site.
func BenchmarkAblationOutage(b *testing.B) {
	var duringFail, duringShare float64
	for i := 0; i < b.N; i++ {
		combo, err := measure.CombinationByID("2B")
		if err != nil {
			b.Fatal(err)
		}
		cfg := measure.DefaultRunConfig(combo, benchSeed)
		pc := atlas.DefaultConfig(benchSeed)
		pc.NumProbes = 600
		cfg.Population = pc
		start, end := 20*time.Minute, 40*time.Minute
		cfg.Outage = &measure.Outage{Site: "FRA", Start: start, End: end}
		ds, err := measure.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		impact := analysis.OutageImpactOf(ds, "FRA", start, end)
		duringFail = impact.During.FailRate
		duringShare = impact.During.SiteShare
	}
	b.ReportMetric(100*duringFail, "%fail-during-outage")
	b.ReportMetric(100*duringShare, "%failed-site-share")
}

// AblationBGPNoise: anycast catchment noise spreads root-letter
// traffic; perfect nearest-site routing concentrates it.
func BenchmarkAblationBGPNoise(b *testing.B) {
	var topShare float64
	for i := 0; i < b.N; i++ {
		cfg := ditl.DefaultRootConfig(benchSeed)
		cfg.NumRecursives = 150
		cfg.MinRate = 60
		trace, err := ditl.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rb := analysis.Ranks(trace.PerRecursive(), len(trace.Observed), 250)
		topShare = rb.MeanTopShare
	}
	b.ReportMetric(topShare, "mean-top-letter-share")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
