// Package ritw reproduces "Recursives in the Wild: Engineering
// Authoritative DNS Servers" (Müller, Moura, Schmidt, Heidemann,
// IMC 2017) as a self-contained Go system: a DNS wire codec, an
// authoritative server, a recursive resolver with the selection
// behaviours the paper measures, a discrete-event Internet simulator,
// the RIPE-Atlas-style measurement fabric, production-trace synthesis,
// and the analyses that regenerate every table and figure.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for measured
// vs. published results, cmd/ritw for the experiment runner, and
// bench_test.go for the per-figure benchmark harness.
package ritw
